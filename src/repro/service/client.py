"""The asyncio KV client: sessions, retries, version floors, metrics.

A :class:`KVClient` talks to every shard of a running service: one
framed-JSON connection to each shard's gateway (requests in) and one to
each replica's reply port (replies out; replicas answer through
application outputs, so replies can come from any replica's forwarder).

**Exactly-once from the client's side.**  A session allocates one seq
per operation and *retries the same ``(session, seq)``* until a reply
arrives; the shard's per-session ledger (:mod:`repro.service.kv`)
guarantees at most one application, and the gateway's durable send log
(Remark-1 retransmission) guarantees at least one.  The client never
invents a second op id for a retry, so a crash cannot turn a retry into
a double write.

**Session monotonicity.**  Each session keeps a per-key *version floor*
-- the compact, dotted-version-vector-spirit session context: the
highest version it has observed per key.  A put ack ratchets the floor;
a get whose reply is below the floor is a **stale read** (a rolled-back
replica answering from its pre-recovery past): the session records the
stale window and retries until the store catches back up, so an accepted
read never violates read-your-writes.

**Metrics.**  Per shard, the client records completed ops, retries, op
latencies, *unavailability intervals* (the [first send, completion]
spans of ops that needed more than one attempt -- the user-visible
outage), and stale-read windows (first stale reply -> first satisfying
reply).  The bench merges the intervals into per-shard outage totals.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.live.framing import frame, read_frame
from repro.service.routing import RoutingTable


@dataclass(frozen=True)
class ShardEndpoint:
    """Where one shard listens: gateway ingress + per-replica reply ports."""

    shard: int
    host: str
    ingress_port: int
    reply_ports: tuple[int, ...]


@dataclass
class ShardClientMetrics:
    """What the client saw of one shard (the user-visible truth)."""

    ops: int = 0
    puts: int = 0
    gets: int = 0
    retries: int = 0
    failures: int = 0                 # ops that never completed
    unmatched_replies: int = 0        # late/duplicate ack frames absorbed
    latencies: list[float] = field(default_factory=list)
    #: [first send, completion] spans of ops needing more than 1 attempt
    unavailable: list[tuple[float, float]] = field(default_factory=list)
    stale_events: int = 0
    stale_durations: list[float] = field(default_factory=list)
    monotonicity_violations: int = 0


class _ShardLink:
    """The client's connections to one shard (dial/retry internals)."""

    def __init__(self, endpoint: ShardEndpoint, closed: asyncio.Event):
        self.endpoint = endpoint
        self.closed = closed
        self.writer: asyncio.StreamWriter | None = None
        self.reader_tasks: list[asyncio.Task] = []

    async def _dial(self, port: int, timeout: float = 0.25):
        return await asyncio.wait_for(
            asyncio.open_connection(self.endpoint.host, port), timeout
        )

    async def send(self, msg: dict[str, Any]) -> bool:
        """Best-effort framed send to the gateway; False if not connected."""
        if self.writer is None:
            try:
                reader, writer = await self._dial(self.endpoint.ingress_port)
                await read_frame(reader)          # hello
                self.writer = writer
            except (OSError, asyncio.TimeoutError):
                return False
        try:
            self.writer.write(
                frame(json.dumps(msg, separators=(",", ":")).encode("utf-8"))
            )
            await self.writer.drain()
            return True
        except (ConnectionError, RuntimeError):
            self.writer.close()
            self.writer = None
            return False

    async def read_replies(self, port: int, on_reply) -> None:
        """Reconnect loop on one replica reply port, until closed."""
        while not self.closed.is_set():
            try:
                reader, writer = await self._dial(port)
                await read_frame(reader)          # hello
                while not self.closed.is_set():
                    payload = await read_frame(reader)
                    if payload is None:
                        break
                    on_reply(json.loads(payload.decode("utf-8")))
                writer.close()
            except (OSError, asyncio.TimeoutError, ValueError):
                pass
            if not self.closed.is_set():
                # The replica may be mid-SIGKILL-downtime; keep dialling.
                await asyncio.sleep(0.05)

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            self.writer = None
        for task in self.reader_tasks:
            task.cancel()


class KVClient:
    """A multi-shard service client multiplexing many sessions."""

    def __init__(
        self,
        routing: RoutingTable,
        endpoints: Sequence[ShardEndpoint],
        *,
        request_timeout: float = 0.4,
    ) -> None:
        if len(endpoints) != routing.shards:
            raise ValueError(
                f"routing table expects {routing.shards} shard(s), "
                f"got {len(endpoints)} endpoint(s)"
            )
        self.routing = routing
        self.endpoints = list(endpoints)
        self.request_timeout = request_timeout
        self._closed = asyncio.Event()
        self._links = [_ShardLink(ep, self._closed) for ep in self.endpoints]
        self._pending: dict[tuple[int, int], asyncio.Future] = {}
        self._epoch = time.monotonic()
        self.metrics = [ShardClientMetrics() for _ in self.endpoints]
        #: key -> set of acked put op_ids (the bench's exactly-once ledger)
        self.acked_puts: dict[str, set[tuple[int, int]]] = {}
        self._sessions = 0

    def now(self) -> float:
        """Seconds since the client started (its metric timeline)."""
        return time.monotonic() - self._epoch

    async def start(self) -> None:
        """Spawn the reply readers for every shard."""
        for link, metrics in zip(self._links, self.metrics):
            for port in link.endpoint.reply_ports:
                link.reader_tasks.append(
                    asyncio.ensure_future(
                        link.read_replies(
                            port,
                            lambda msg, m=metrics: self._on_reply(msg, m),
                        )
                    )
                )

    async def aclose(self) -> None:
        """Stop readers and close every connection."""
        self._closed.set()
        for link in self._links:
            link.close()
        await asyncio.sleep(0)

    def session(self, session_id: int | None = None) -> "KVSession":
        """A new session (fresh id unless one is supplied)."""
        if session_id is None:
            session_id = self._sessions
        self._sessions = max(self._sessions, session_id) + 1
        return KVSession(self, session_id)

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _on_reply(
        self, msg: dict[str, Any], metrics: ShardClientMetrics
    ) -> None:
        key = (int(msg["session"]), int(msg["seq"]))
        fut = self._pending.get(key)
        if fut is not None and not fut.done():
            fut.set_result(msg)
        else:
            metrics.unmatched_replies += 1

    async def _request(
        self,
        shard: int,
        msg: dict[str, Any],
        deadline: float,
    ) -> tuple[dict[str, Any] | None, float, int]:
        """Send (and resend) one op until a reply or the deadline.

        Returns ``(reply or None, first-send time, attempts)``.
        """
        op_key = (int(msg["session"]), int(msg["seq"]))
        link = self._links[shard]
        t0 = self.now()
        attempts = 0
        loop = asyncio.get_running_loop()
        while self.now() < deadline:
            fut: asyncio.Future = loop.create_future()
            self._pending[op_key] = fut
            attempts += 1
            await link.send(msg)
            # Exponential backoff on the per-attempt budget (capped at
            # 8x): every retry is a fresh gateway request the shard must
            # log, dedup, and re-ack, so fixed-interval retries against
            # an overloaded or recovering shard amplify its load into
            # collapse.  Backoff keeps the amplification logarithmic in
            # the op's total wait while the first retry stays prompt.
            budget = min(
                self.request_timeout * min(8.0, 2.0 ** (attempts - 1)),
                deadline - self.now(),
            )
            try:
                reply = await asyncio.wait_for(fut, timeout=max(0.01, budget))
                return reply, t0, attempts
            except asyncio.TimeoutError:
                continue
            finally:
                self._pending.pop(op_key, None)
        return None, t0, attempts


class KVSession:
    """One user session: sequential ops, per-key version floors."""

    def __init__(self, client: KVClient, session_id: int) -> None:
        self.client = client
        self.session_id = session_id
        self.seq = 0
        self.floors: dict[str, int] = {}
        self.failed_ops = 0

    def _next_seq(self) -> int:
        seq = self.seq
        self.seq += 1
        return seq

    def _finish(
        self,
        metrics: ShardClientMetrics,
        reply: dict[str, Any] | None,
        t0: float,
        attempts: int,
    ) -> None:
        done = self.client.now()
        if reply is None:
            self.failed_ops += 1
            metrics.failures += 1
            metrics.retries += max(0, attempts - 1)
            metrics.unavailable.append((t0, done))
            return
        metrics.ops += 1
        metrics.latencies.append(done - t0)
        if attempts > 1:
            metrics.retries += attempts - 1
            metrics.unavailable.append((t0, done))

    async def put(
        self, key: str, value: int, *, deadline: float | None = None
    ) -> dict[str, Any] | None:
        """Write ``key``; retries the same op id until acked.

        Returns the ack (``{"version": ...}``) or ``None`` on deadline.
        """
        shard = self.client.routing.shard_for(key)
        metrics = self.client.metrics[shard]
        seq = self._next_seq()
        msg = {
            "op": "put",
            "session": self.session_id,
            "seq": seq,
            "key": key,
            "value": int(value),
        }
        if deadline is None:
            deadline = self.client.now() + 30.0
        reply, t0, attempts = await self.client._request(shard, msg, deadline)
        metrics.puts += 1
        self._finish(metrics, reply, t0, attempts)
        if reply is None:
            return None
        version = int(reply["version"])
        if version <= self.floors.get(key, 0):
            # A put must advance past everything this session observed;
            # anything else is a lost or duplicated update surfacing.
            metrics.monotonicity_violations += 1
        self.floors[key] = max(self.floors.get(key, 0), version)
        self.client.acked_puts.setdefault(key, set()).add(
            (self.session_id, seq)
        )
        return reply

    async def get(
        self,
        key: str,
        *,
        min_version: int = 0,
        deadline: float | None = None,
    ) -> dict[str, Any] | None:
        """Read ``key``; stale replies (below the session floor) retry.

        Returns the first reply at or above the floor, or ``None`` on
        deadline.  The accepted version ratchets the floor.
        """
        shard = self.client.routing.shard_for(key)
        metrics = self.client.metrics[shard]
        floor = max(self.floors.get(key, 0), min_version)
        seq = self._next_seq()
        msg = {
            "op": "get",
            "session": self.session_id,
            "seq": seq,
            "key": key,
        }
        if deadline is None:
            deadline = self.client.now() + 30.0
        stale_since: float | None = None
        first_t0: float | None = None
        attempts_total = 0
        while True:
            reply, t0, attempts = await self.client._request(
                shard, msg, deadline
            )
            first_t0 = t0 if first_t0 is None else first_t0
            attempts_total += attempts
            if reply is None:
                metrics.gets += 1
                self._finish(metrics, None, first_t0, attempts_total)
                if stale_since is not None:
                    metrics.stale_durations.append(
                        self.client.now() - stale_since
                    )
                return None
            version = int(reply["version"])
            if version < floor:
                # Stale read: a recovering replica answered from a
                # timeline that predates writes this session saw acked.
                if stale_since is None:
                    stale_since = self.client.now()
                    metrics.stale_events += 1
                await asyncio.sleep(0.02)
                continue
            metrics.gets += 1
            self._finish(metrics, reply, first_t0, attempts_total)
            if stale_since is not None:
                metrics.stale_durations.append(
                    self.client.now() - stale_since
                )
            self.floors[key] = max(floor, version)
            return reply
