"""The served KV workload: wire types, session dedup, service application.

This module is the canonical home of the KV wire vocabulary (promoted
out of :mod:`repro.apps.kvstore`, which keeps deprecation shims) plus
the *service* flavour of the replica: :class:`KVServiceApp`, the
application one shard of ``repro.service`` runs.

Topology inside one shard of ``n`` processes:

- **pid 0 is the gateway**: it injects client requests into the protocol
  via :meth:`~repro.core.recovery.DamaniGargProcess.inject_app_send` and
  *never receives an application message* (replicas answer clients
  through environment outputs, not sends back to pid 0).  That keeps the
  gateway outside every rollback: its send log is the shard's durable
  intake ledger, so a put lost in a replica crash is revived by the
  Remark-1 retransmission the recovery token triggers.
- **pids 1..replicas are replicas**: each key has a fixed primary by
  hash; the primary applies puts, pushes :class:`KVReplicate` to its
  peers, and answers via ``ctx.output`` (forwarded to clients by the
  node's service port).

Exactly-once across crash/rollback rides on a per-session ledger inside
:class:`ServiceReplicaState`: the primary records the *set* of applied
put seqs per session (not just the highest), so

- a client retry of an already-applied ``op_id`` is recognised as a
  duplicate and answered from the cached reply instead of re-applied,
  even when the retry raced a crash; and
- a put that *was* applied but whose application rolled back is *not* in
  the (equally rolled-back) ledger, so its redelivery after recovery
  applies normally -- the ledger can never suppress a legitimate
  re-application, which a "last seq per session" high-water mark would.

Gets are deliberately not deduplicated: they are idempotent, and a
retried get should observe the *current* store, which is what lets the
client's per-key version floors (its compact, dotted-version-vector-ish
session context) ratchet forward out of a stale window.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any

from repro.apps.applications import mix64
from repro.runtime.app import ProcessContext


# ---------------------------------------------------------------------------
# Wire types (canonical home; repro.apps.kvstore re-exports with shims)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class KVPut:
    """Apply ``key = value`` at the key's primary; acked by a KVReply."""

    key: str
    value: int
    op_id: tuple[int, int]          # (session/client id, op seq)


@dataclass(frozen=True)
class KVGet:
    """Read ``key`` at its primary; answered by a KVReply."""

    key: str
    op_id: tuple[int, int]


@dataclass(frozen=True)
class KVReplicate:
    """Primary-to-backup push of one applied write."""

    key: str
    value: int
    version: int
    op_id: tuple[int, int]


@dataclass(frozen=True)
class KVReply:
    """The answer to one put/get: the key's value and version."""

    op_id: tuple[int, int]
    key: str
    value: int | None
    version: int


def hash_key(key: str) -> int:
    """Stable (non-salted) string hash for key placement."""
    value = 0
    for ch in key:
        value = mix64(value, ord(ch))
    return value


def lookup_sorted(
    data: tuple[tuple[str, Any], ...], key: str
) -> Any | None:
    """Binary-search a ``(key, entry)`` tuple sorted by key.

    ``(key,)`` sorts immediately before ``(key, anything)``, so
    ``bisect_left`` lands on the entry if it exists.
    """
    i = bisect_left(data, (key,))
    if i < len(data) and data[i][0] == key:
        return data[i][1]
    return None


# ---------------------------------------------------------------------------
# Replica state with the per-session exactly-once ledger
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SessionSlot:
    """One session's ledger at one primary.

    ``applied`` is the sorted tuple of put seqs this primary has applied
    for the session -- a set, not a high-water mark, because rollback can
    reorder a retry ahead of the original's re-application.  The last
    reply is cached so a duplicate put can be re-acked without touching
    the store.
    """

    applied: tuple[int, ...] = ()
    last_reply: KVReply | None = None

    def has(self, seq: int) -> bool:
        """Was put ``seq`` already applied on this timeline?"""
        i = bisect_left(self.applied, seq)
        return i < len(self.applied) and self.applied[i] == seq

    def record(self, seq: int, reply: KVReply) -> "SessionSlot":
        """Ledger ``seq`` as applied and cache its reply."""
        i = bisect_left(self.applied, seq)
        applied = self.applied[:i] + (seq,) + self.applied[i:]
        return SessionSlot(applied=applied, last_reply=reply)


@dataclass(frozen=True)
class ServiceReplicaState:
    """Replica state: the store plus the per-session dedup ledgers.

    Both maps are sorted tuples so states stay hashable (snapshot
    identity in the executor) and lookups stay ``O(log n)``.
    """

    #: key -> (value, version), sorted by key
    data: tuple[tuple[str, tuple[int, int]], ...] = ()
    #: session id -> SessionSlot, sorted by session id
    sessions: tuple[tuple[int, SessionSlot], ...] = ()
    applied: int = 0

    def lookup(self, key: str) -> tuple[int, int] | None:
        """The key's ``(value, version)``, or ``None``."""
        return lookup_sorted(self.data, key)

    def slot(self, session: int) -> SessionSlot:
        """The session's ledger (empty slot when never seen)."""
        i = bisect_left(self.sessions, (session,))
        if i < len(self.sessions) and self.sessions[i][0] == session:
            return self.sessions[i][1]
        return SessionSlot()

    def store(
        self, key: str, value: int, version: int,
        session: int | None = None, slot: SessionSlot | None = None,
    ) -> "ServiceReplicaState":
        """Apply one write (and optionally one ledger update)."""
        items = dict(self.data)
        items[key] = (value, version)
        sessions = self.sessions
        if session is not None and slot is not None:
            ledger = dict(self.sessions)
            ledger[session] = slot
            sessions = tuple(sorted(ledger.items()))
        return ServiceReplicaState(
            data=tuple(sorted(items.items())),
            sessions=sessions,
            applied=self.applied + 1,
        )

    def tick(self) -> "ServiceReplicaState":
        """The same state, one more delivery accounted."""
        return ServiceReplicaState(
            data=self.data, sessions=self.sessions, applied=self.applied + 1
        )

    def as_dict(self) -> dict[str, tuple[int, int]]:
        """The store as a plain dict (tests, audits)."""
        return dict(self.data)


class KVServiceApp:
    """One shard's application: gateway at pid 0, replicas at 1..replicas.

    The handlers are pure functions of ``(state, payload)`` -- the
    paper's piecewise-deterministic model -- so checkpoint + stable-log
    replay reconstructs a replica (ledgers included) exactly.
    """

    def __init__(self, *, replicas: int = 3) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.replicas = replicas

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def is_replica(self, pid: int) -> bool:
        """Replicas occupy pids 1..replicas; pid 0 is the gateway."""
        return 1 <= pid <= self.replicas

    def primary_for(self, key: str) -> int:
        """The key's fixed primary replica pid."""
        return 1 + mix64(hash_key(key), 0) % self.replicas

    # ------------------------------------------------------------------
    # Application protocol
    # ------------------------------------------------------------------
    def initial_state(self, pid: int, n: int) -> ServiceReplicaState:
        """Every process starts with an empty store and ledger."""
        return ServiceReplicaState()

    def bootstrap(self, pid: int, n: int, ctx: ProcessContext) -> None:
        """No bootstrap traffic: all load arrives through the gateway."""
        return

    def handle(
        self, state: ServiceReplicaState, payload: Any, ctx: ProcessContext
    ) -> ServiceReplicaState:
        """Dispatch one delivered message on a replica."""
        if not self.is_replica(ctx.pid):
            # The gateway must never receive app messages: a rollback
            # there would regress its injection seq and reuse dedup ids.
            raise TypeError(
                f"gateway p{ctx.pid} received app message {payload!r}"
            )
        if isinstance(payload, KVPut):
            return self._handle_put(state, payload, ctx)
        if isinstance(payload, KVGet):
            current = state.lookup(payload.key)
            value, version = current if current else (None, 0)
            ctx.output(
                KVReply(
                    op_id=payload.op_id,
                    key=payload.key,
                    value=value,
                    version=version,
                )
            )
            return state.tick()
        if isinstance(payload, KVReplicate):
            current = state.lookup(payload.key)
            if current is None or payload.version > current[1]:
                return state.store(
                    payload.key, payload.value, payload.version
                )
            return state.tick()
        raise TypeError(f"replica got {payload!r}")

    def _handle_put(
        self, state: ServiceReplicaState, payload: KVPut, ctx: ProcessContext
    ) -> ServiceReplicaState:
        session, seq = payload.op_id
        slot = state.slot(session)
        if slot.has(seq):
            # Client retry of an op this timeline already applied: ack
            # from the cache, never touch the store.
            if (
                slot.last_reply is not None
                and slot.last_reply.op_id == payload.op_id
            ):
                ctx.output(slot.last_reply)
            return state.tick()
        current = state.lookup(payload.key)
        version = (current[1] if current else 0) + 1
        reply = KVReply(
            op_id=payload.op_id,
            key=payload.key,
            value=payload.value,
            version=version,
        )
        for replica in range(1, self.replicas + 1):
            if replica != ctx.pid:
                ctx.send(
                    replica,
                    KVReplicate(
                        key=payload.key,
                        value=payload.value,
                        version=version,
                        op_id=payload.op_id,
                    ),
                )
        ctx.output(reply)
        return state.store(
            payload.key, payload.value, version,
            session=session, slot=slot.record(seq, reply),
        )
