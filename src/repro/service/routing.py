"""The versioned key -> shard routing table.

One table describes the whole service: ``shards`` independent recovery
domains, each a full damani-garg cluster, with keys placed by a stable
hash.  The table is versioned so clients and operators can tell two
epochs of the service apart (a resharding bumps the version; a client
holding a stale table can detect it from the shard's hello frame).

The shard hash is salted differently from the *intra-shard* primary
placement hash (:meth:`~repro.service.kv.KVServiceApp.primary_for`), so
key -> shard and key -> primary are independent mixes of the same stable
key hash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.apps.applications import mix64
from repro.service.kv import hash_key

#: Salt decorrelating shard placement from in-shard primary placement.
_SHARD_SALT = 0x5EED


@dataclass(frozen=True)
class RoutingTable:
    """Immutable, versioned key -> shard map."""

    shards: int
    version: int = 1

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.version < 1:
            raise ValueError("table versions start at 1")

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` under this table version."""
        return mix64(hash_key(key), _SHARD_SALT) % self.shards

    def reshard(self, shards: int) -> "RoutingTable":
        """A successor table with a new shard count and bumped version."""
        return RoutingTable(shards=shards, version=self.version + 1)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (written next to the shard workdirs)."""
        return {
            "format": "repro-routing-v1",
            "version": self.version,
            "shards": self.shards,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RoutingTable":
        """Inverse of :meth:`to_dict`; rejects unknown formats."""
        if payload.get("format") != "repro-routing-v1":
            raise ValueError(f"unknown routing format {payload.get('format')!r}")
        return cls(
            shards=int(payload["shards"]), version=int(payload["version"])
        )
