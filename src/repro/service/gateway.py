"""The client-facing TCP endpoint a live node hosts for its shard.

One :class:`ServicePort` runs inside each node of a ``kind="kv"`` live
cluster (see :mod:`repro.live.node`), in one of two roles:

- **ingress** (pid 0, the gateway): accepts client connections, reads
  framed JSON requests, and hands each to the protocol via
  ``inject_app_send`` addressed to the key's primary replica.  The
  gateway never receives app messages back, so it is never rolled back
  and its send log is the shard's durable intake ledger (Remark-1
  retransmission replays it to a recovering primary).
- **reply** (replica pids): forwards the replica's application outputs
  (:class:`~repro.service.kv.KVReply`, emitted by ``ctx.output``) to
  every connected client as framed JSON.  Outputs are the one legal exit
  path for replies -- a ``ctx.send`` back to pid 0 would make the
  gateway rollback-able.  The forwarder tails ``protocol.outputs`` from
  index 0 on every boot: after a crash the checkpoint-restored prefix is
  re-forwarded, and clients drop acks for ops no longer pending.

The wire format is the cluster's own length-prefixed CRC framing
(:mod:`repro.live.framing`) carrying plain JSON objects, so clients need
no codec knowledge:

- request:  ``{"op": "put"|"get", "session": int, "seq": int,
  "key": str, "value": int}`` (``value`` ignored for gets);
- reply:    ``{"session": int, "seq": int, "key": str,
  "value": int|null, "version": int}``;
- hello (server -> client, once per connection):
  ``{"role": "ingress"|"reply", "shard": int, "pid": int,
  "routing_version": int}``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.live.framing import frame, read_frame
from repro.service.kv import KVGet, KVPut, KVReply, KVServiceApp

#: How often the reply forwarder tails ``protocol.outputs`` (seconds).
_FORWARD_INTERVAL = 0.005


def _encode(obj: dict[str, Any]) -> bytes:
    return frame(json.dumps(obj, separators=(",", ":")).encode("utf-8"))


class ServicePort:
    """One node's client-facing port (ingress or reply role)."""

    def __init__(
        self,
        pid: int,
        protocol: Any,
        app: KVServiceApp,
        spec: dict[str, Any],
    ) -> None:
        self.pid = pid
        self.protocol = protocol
        self.app = app
        self.spec = spec
        if pid == 0:
            self.role = "ingress"
            self.port = int(spec["ingress_port"])
        elif app.is_replica(pid):
            self.role = "reply"
            self.port = int(spec["reply_ports"][pid - 1])
        else:
            self.role = "none"
            self.port = 0
        self.host = str(spec.get("service_host", "127.0.0.1"))
        self._server: asyncio.AbstractServer | None = None
        self._forward_task: asyncio.Task | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._forwarded = 0
        self.requests = 0
        self.puts = 0
        self.gets = 0
        self.rejected = 0
        self.connections = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the port and (for replicas) start tailing outputs."""
        if self.role == "none":
            return
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        if self.role == "reply":
            self._forward_task = asyncio.ensure_future(self._forward_loop())

    async def stop(self) -> None:
        """Tear the port down; a final tail pass drains pending replies."""
        if self._forward_task is not None:
            self._forward_replies()   # don't strand replies in the tail
            self._forward_task.cancel()
            self._forward_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()

    def report(self) -> dict[str, Any]:
        """Counters for the node's done file."""
        return {
            "role": self.role,
            "port": self.port,
            "connections": self.connections,
            "requests": self.requests,
            "puts": self.puts,
            "gets": self.gets,
            "rejected": self.rejected,
            "replies_forwarded": self._forwarded,
        }

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            writer.write(
                _encode(
                    {
                        "role": self.role,
                        "shard": int(self.spec.get("shard", 0)),
                        "pid": self.pid,
                        "routing_version": int(
                            self.spec.get("routing_version", 1)
                        ),
                    }
                )
            )
            await writer.drain()
            if self.role == "reply":
                self._writers.add(writer)
            while True:
                payload = await read_frame(reader)
                if payload is None:
                    break
                if self.role == "ingress":
                    self._on_request(payload)
                # Reply connections are one-way; inbound frames ignored.
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    def _on_request(self, raw: bytes) -> None:
        try:
            msg = json.loads(raw.decode("utf-8"))
            op = msg["op"]
            op_id = (int(msg["session"]), int(msg["seq"]))
            key = str(msg["key"])
            if op == "put":
                payload: Any = KVPut(
                    key=key, value=int(msg["value"]), op_id=op_id
                )
            elif op == "get":
                payload = KVGet(key=key, op_id=op_id)
            else:
                raise ValueError(f"unknown op {op!r}")
        except (KeyError, ValueError, TypeError, UnicodeDecodeError):
            self.rejected += 1
            return
        self.requests += 1
        if isinstance(payload, KVPut):
            self.puts += 1
        else:
            self.gets += 1
        self.protocol.inject_app_send(
            self.app.primary_for(key), payload
        )

    # ------------------------------------------------------------------
    # Reply forwarding (replica role)
    # ------------------------------------------------------------------
    def _forward_replies(self) -> None:
        outputs = self.protocol.outputs
        while self._forwarded < len(outputs):
            _, value = outputs[self._forwarded]
            self._forwarded += 1
            if not isinstance(value, KVReply):
                continue
            data = _encode(
                {
                    "session": value.op_id[0],
                    "seq": value.op_id[1],
                    "key": value.key,
                    "value": value.value,
                    "version": value.version,
                }
            )
            for writer in list(self._writers):
                try:
                    writer.write(data)
                except (ConnectionError, RuntimeError):
                    self._writers.discard(writer)

    async def _forward_loop(self) -> None:
        while True:
            self._forward_replies()
            await asyncio.sleep(_FORWARD_INTERVAL)
