"""Boot and supervise S independent shard clusters as one service.

Each shard is a complete damani-garg live cluster -- its own supervisor
thread, storage directory, epoch, SIGKILL schedule, and (optionally) a
seeded :class:`~repro.live.faults.LiveFaultPlan` -- so each shard is one
independent *recovery domain*: a crash in shard 2 rolls back nothing in
shard 0.  The :class:`ShardManager` allocates the client-facing ports up
front (so a respawned replica rebinds the same reply port), compiles one
:class:`~repro.live.supervisor.LiveClusterSpec` per shard with the
``kind="kv"`` application, runs every cluster in its own thread, and
publishes the :class:`~repro.service.routing.RoutingTable` plus the
endpoint list clients connect to.

Crashes always target replicas (pids >= 1); the gateway (pid 0) is the
shard's durable intake ledger and is deliberately outside the failure
plan -- see :mod:`repro.service.kv`.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.live.faults import LiveFaultPlan
from repro.live.supervisor import (
    LiveClusterSpec,
    LiveCrashPlan,
    LiveRunResult,
    _free_ports,
    run_cluster,
)
from repro.service.client import ShardEndpoint
from repro.service.routing import RoutingTable


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one service run needs: topology, pacing, workload.

    The cluster half (shards, nodes, intervals, failure plan) shapes the
    :class:`ShardManager`; the workload half (sessions, ops, keys,
    Zipf skew) shapes the user simulator in :mod:`repro.service.bench`.
    """

    shards: int = 2
    nodes_per_shard: int = 4            # 1 gateway + (nodes - 1) replicas
    #: env-time cap on the run; ShardManager.stop() may end it earlier
    run_seconds: float = 12.0
    linger: float = 1.5
    checkpoint_interval: float = 0.5
    flush_interval: float = 0.15
    #: one SIGKILL per shard, aimed at a replica, at this env-time
    crash_replicas: bool = True
    crash_at: float = 2.0
    downtime: float = 0.75
    #: draw a seeded LiveFaultPlan per shard (None: no network faults)
    fault_seed: int | None = None
    host: str = "127.0.0.1"
    # -- user-simulator workload ---------------------------------------
    sessions: int = 200
    ops_per_session: int = 20
    keys: int = 64
    put_ratio: float = 0.6
    zipf_s: float = 1.1
    seed: int = 0
    request_timeout: float = 0.4
    settle_seconds: float = 1.5

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.nodes_per_shard < 2:
            raise ValueError("a shard needs a gateway plus >= 1 replica")
        if not 0.0 <= self.put_ratio <= 1.0:
            raise ValueError("put_ratio is a probability")

    @property
    def replicas(self) -> int:
        """Replica count per shard (everything but the gateway)."""
        return self.nodes_per_shard - 1


class ShardManager:
    """Owns the S shard clusters of one service run."""

    def __init__(self, config: ServiceConfig, workdir: str) -> None:
        self.config = config
        self.workdir = workdir
        self.routing = RoutingTable(shards=config.shards)
        self._threads: list[threading.Thread] = []
        self._results: dict[int, LiveRunResult] = {}
        self._errors: dict[int, BaseException] = {}
        self._endpoints: list[ShardEndpoint] = []
        self._specs: list[LiveClusterSpec] = []
        os.makedirs(workdir, exist_ok=True)
        # Shared early-stop signal: every node in every shard polls this
        # path, so run_seconds is a cap and stop() ends the run as soon
        # as the workload is done (see LiveClusterSpec.stop_path).
        self.stop_path = os.path.join(workdir, "stop.signal")
        if os.path.exists(self.stop_path):
            os.remove(self.stop_path)   # stale signal from a previous run
        for shard in range(config.shards):
            service_ports = _free_ports(config.nodes_per_shard, config.host)
            ingress_port, reply_ports = service_ports[0], service_ports[1:]
            self._endpoints.append(
                ShardEndpoint(
                    shard=shard,
                    host=config.host,
                    ingress_port=ingress_port,
                    reply_ports=tuple(reply_ports),
                )
            )
            self._specs.append(self._shard_spec(shard, ingress_port,
                                                reply_ports))

    def _shard_spec(
        self, shard: int, ingress_port: int, reply_ports: list[int]
    ) -> LiveClusterSpec:
        config = self.config
        crashes = []
        if config.crash_replicas:
            # Never pid 0: each shard loses one replica, round-robin so
            # different shards exercise different primaries.
            victim = 1 + shard % config.replicas
            crashes.append(
                LiveCrashPlan(
                    pid=victim, at=config.crash_at, downtime=config.downtime
                )
            )
        faults = LiveFaultPlan()
        if config.fault_seed is not None:
            from repro.stress import seeded_fault_plan

            faults = seeded_fault_plan(
                config.fault_seed + shard,
                n=config.nodes_per_shard,
                run_seconds=config.run_seconds,
            )
        return LiveClusterSpec(
            n=config.nodes_per_shard,
            protocol="damani-garg",
            run_seconds=config.run_seconds,
            linger=config.linger,
            checkpoint_interval=config.checkpoint_interval,
            flush_interval=config.flush_interval,
            crashes=crashes,
            faults=faults,
            host=config.host,
            app={
                "kind": "kv",
                "replicas": config.replicas,
                "shard": shard,
                "routing_version": self.routing.version,
                "service_host": config.host,
                "ingress_port": ingress_port,
                "reply_ports": list(reply_ports),
            },
            # Long-running service posture: decentralised stability so
            # logs/history stay bounded while the shard keeps serving.
            gossip_stability=True,
            enable_gc=True,
            compact_history=True,
            stop_path=self.stop_path,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Write the routing/endpoints files and boot every shard."""
        with open(
            os.path.join(self.workdir, "routing.json"), "w", encoding="utf-8"
        ) as fh:
            json.dump(self.routing.to_dict(), fh, indent=2)
        with open(
            os.path.join(self.workdir, "endpoints.json"), "w",
            encoding="utf-8",
        ) as fh:
            json.dump(
                [
                    {
                        "shard": ep.shard,
                        "host": ep.host,
                        "ingress_port": ep.ingress_port,
                        "reply_ports": list(ep.reply_ports),
                    }
                    for ep in self._endpoints
                ],
                fh,
                indent=2,
            )
        for shard, spec in enumerate(self._specs):
            shard_dir = os.path.join(self.workdir, f"shard{shard}")

            def run(shard: int = shard, spec: LiveClusterSpec = spec,
                    shard_dir: str = shard_dir) -> None:
                try:
                    self._results[shard] = run_cluster(spec, shard_dir)
                except BaseException as exc:   # surfaced by join()
                    self._errors[shard] = exc

            thread = threading.Thread(
                target=run, name=f"shard-{shard}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def endpoints(self) -> list[ShardEndpoint]:
        """Where clients connect, one entry per shard."""
        return list(self._endpoints)

    def wait_ready(self, timeout: float = 45.0) -> None:
        """Block until every shard's service ports accept connections."""
        deadline = time.monotonic() + timeout
        for ep in self._endpoints:
            for port in (ep.ingress_port, *ep.reply_ports):
                while True:
                    if ep.shard in self._errors:
                        raise RuntimeError(
                            f"shard {ep.shard} failed during boot"
                        ) from self._errors[ep.shard]
                    try:
                        with socket.create_connection(
                            (ep.host, port), timeout=0.25
                        ):
                            break
                    except OSError:
                        if time.monotonic() > deadline:
                            raise RuntimeError(
                                f"shard {ep.shard} port {port} never "
                                "came up"
                            ) from None
                        time.sleep(0.05)

    def stop(self) -> None:
        """End the run early: publish the stop signal every node polls.

        ``run_seconds`` stays the hard cap; this just moves the end of
        the run phase forward to *now* (plus each node's linger drain).
        Idempotent; safe to call before :meth:`join`.
        """
        with open(self.stop_path, "w", encoding="utf-8"):
            pass

    def join(self, timeout: float | None = None) -> dict[int, LiveRunResult]:
        """Wait for every shard cluster to finish; return their results."""
        for thread in self._threads:
            thread.join(timeout)
            if thread.is_alive():
                raise RuntimeError(f"{thread.name} did not finish in time")
        if self._errors:
            shard, exc = sorted(self._errors.items())[0]
            raise RuntimeError(f"shard {shard} failed") from exc
        return dict(self._results)
