"""The service benchmark: a closed-loop user simulator over real shards.

``python -m repro service-bench`` boots a :class:`ShardManager`, drives
``sessions`` concurrent closed-loop user sessions (Zipfian keys, mixed
puts/gets, one op outstanding per session) through :class:`KVClient`
while each shard's supervisor SIGKILLs a replica mid-run, and grades the
whole thing from two vantage points:

- **client-side** (user-visible truth): every op completes; per shard,
  the merged [first send, completion] spans of retried ops are the
  *unavailability windows*, and get replies below a session's version
  floor open *stale-read windows* (closed by the first satisfying
  reply).  After a settle phase, the **exactly-once audit** reads every
  written key back with a floor equal to the count of distinct acked
  puts: a version above the floor means some op applied twice, a read
  stuck below it means an acked write was lost -- equality on every key
  is the paper's exactly-once promise surviving crash and rollback.
- **trace-side** (protocol truth): each shard's merged trace must show
  every supervisor crash followed by a restart, a recovery-token
  broadcast, and a post-restart checkpoint.

The result is ``BENCH_service.json`` (format
``repro-service-bench-v1``); :func:`check_service_payload` is the CI
gate over its schema and verdicts.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time
from bisect import bisect_right
from typing import Any, Callable, Sequence

from repro.analysis.metrics import percentile
from repro.live.supervisor import LiveRunResult
from repro.runtime.trace import EventKind, SimTrace
from repro.service.client import KVClient, ShardClientMetrics, ShardEndpoint
from repro.service.manager import ServiceConfig, ShardManager
from repro.service.routing import RoutingTable

SERVICE_BENCH_FORMAT = "repro-service-bench-v1"


# ---------------------------------------------------------------------------
# Workload shape
# ---------------------------------------------------------------------------
def zipf_sampler(
    rng: random.Random, keys: int, s: float
) -> Callable[[], str]:
    """A Zipf(s) key sampler over ``k0..k{keys-1}`` (rank 1 hottest)."""
    weights = [1.0 / (rank + 1) ** s for rank in range(keys)]
    cumulative, total = [], 0.0
    for w in weights:
        total += w
        cumulative.append(total)

    def sample() -> str:
        return f"k{bisect_right(cumulative, rng.random() * total)}"

    return sample


# ---------------------------------------------------------------------------
# Trace-side oracle (the generic recovery half of check_live_run)
# ---------------------------------------------------------------------------
def check_shard_trace(trace: SimTrace) -> dict[str, Any]:
    """Grade one shard's merged trace: crash -> restart + token + ckpt."""
    failures: list[str] = []
    crash_events = trace.events(EventKind.CRASH)
    restart_events = trace.events(EventKind.RESTART)
    token_events = trace.events(EventKind.TOKEN_SEND)
    for crash in crash_events:
        if not any(
            r.pid == crash.pid and r.time > crash.time
            for r in restart_events
        ):
            failures.append(
                f"p{crash.pid} crashed at t={crash.time:.3f} and never "
                "restarted"
            )
        if not any(
            t.pid == crash.pid and t.time > crash.time
            for t in token_events
        ):
            failures.append(
                f"p{crash.pid} recovered without broadcasting a token"
            )
    for restart in restart_events:
        if not any(
            c.pid == restart.pid and c.time >= restart.time
            for c in trace.events(EventKind.CHECKPOINT)
        ):
            failures.append(
                f"p{restart.pid} restarted at t={restart.time:.3f} "
                "without a post-restart checkpoint"
            )
    return {
        "ok": not failures,
        "failures": failures,
        "crashes": len(crash_events),
        "restarts": len(restart_events),
        "tokens": len(token_events),
    }


def merge_intervals(
    spans: Sequence[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Union of possibly-overlapping [start, end] spans."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


# ---------------------------------------------------------------------------
# The user simulator
# ---------------------------------------------------------------------------
async def _drive_users(
    config: ServiceConfig,
    routing: RoutingTable,
    endpoints: Sequence[ShardEndpoint],
) -> dict[str, Any]:
    client = KVClient(
        routing, endpoints, request_timeout=config.request_timeout
    )
    await client.start()
    # Phase budget inside the cluster's run_seconds *cap*: sessions
    # finish, the shard settles (retransmissions land), then the audit
    # reads -- after which the bench publishes the stop signal, so a
    # fast machine never sits out the rest of the cap.  The audit gets
    # its own reserved slice of the cap; without it a slow op phase
    # starves the reads and every key looks "lost" at the deadline.
    audit_budget = max(15.0, 0.25 * config.keys)
    ops_deadline = config.run_seconds - config.settle_seconds - audit_budget

    async def one_session(index: int) -> int:
        await asyncio.sleep(0.002 * index)      # staggered ramp
        session = client.session()
        rng = random.Random(config.seed * 100_003 + index)
        sample = zipf_sampler(rng, config.keys, config.zipf_s)
        for _ in range(config.ops_per_session):
            key = sample()
            if rng.random() < config.put_ratio:
                await session.put(
                    key, rng.randrange(1 << 16), deadline=ops_deadline
                )
            else:
                await session.get(key, deadline=ops_deadline)
        return session.failed_ops

    failed = sum(
        await asyncio.gather(
            *(one_session(i) for i in range(config.sessions))
        )
    )
    await asyncio.sleep(config.settle_seconds)

    # Exactly-once audit: read every written key back at a floor equal
    # to the number of *distinct acked puts* -- above means a double
    # application, stuck below means a lost acked write.  Only a clean
    # session phase is auditable: an op the client gave up on may or may
    # not have been applied, so its key has no exact expected version.
    expected = {
        key: len(op_ids) for key, op_ids in client.acked_puts.items()
    }
    mismatches: list[dict[str, Any]] = []
    audited = 0
    if failed == 0:
        audit_deadline = min(
            client.now() + audit_budget,
            config.run_seconds + config.linger - 0.3,
        )
        audit_session = client.session()

        # The reads run concurrently: each key gets the whole audit
        # budget instead of whatever a sequential sweep left over while
        # the shard drained its post-storm backlog.
        async def audit_one(key: str, count: int) -> dict[str, Any] | None:
            reply = await audit_session.get(
                key, min_version=count, deadline=audit_deadline
            )
            if reply is None:
                # A floorless probe distinguishes a genuinely lost write
                # (version short of the floor) from an audit that ran
                # out of budget before any reply came back.
                probe = await client.session().get(
                    key, deadline=client.now() + 2.0
                )
                return {"key": key, "expected": count,
                        "observed": (
                            int(probe["version"]) if probe else None
                        ),
                        "kind": "acked write lost"}
            if int(reply["version"]) != count:
                return {"key": key, "expected": count,
                        "observed": int(reply["version"]),
                        "kind": "duplicate application"}
            return None

        ordered = sorted(expected.items())
        verdicts = await asyncio.gather(
            *(audit_one(key, count) for key, count in ordered)
        )
        audited = len(ordered)
        mismatches = [v for v in verdicts if v is not None]
    monotonicity = sum(
        m.monotonicity_violations for m in client.metrics
    )
    await client.aclose()
    return {
        "metrics": client.metrics,
        "failed_ops": failed,
        "audited_keys": audited,
        "expected_keys": len(expected),
        "mismatches": mismatches,
        "monotonicity_violations": monotonicity,
        "puts_acked": sum(len(v) for v in client.acked_puts.values()),
    }


def _shard_report(
    metrics: ShardClientMetrics, result: LiveRunResult | None
) -> dict[str, Any]:
    windows = merge_intervals(metrics.unavailable)
    stale = metrics.stale_durations
    latencies = sorted(metrics.latencies)
    report: dict[str, Any] = {
        "ops": metrics.ops,
        "puts": metrics.puts,
        "gets": metrics.gets,
        "retries": metrics.retries,
        "failures": metrics.failures,
        "unmatched_replies": metrics.unmatched_replies,
        "latency_s": {
            "p50": round(percentile(latencies, 0.50), 6) if latencies else None,
            "p99": round(percentile(latencies, 0.99), 6) if latencies else None,
            "max": round(latencies[-1], 6) if latencies else None,
        },
        "unavailability": {
            "windows": len(windows),
            "total_s": round(sum(e - s for s, e in windows), 6),
            "max_s": round(max((e - s for s, e in windows), default=0.0), 6),
        },
        "stale_reads": {
            "events": metrics.stale_events,
            "total_s": round(sum(stale), 6),
            "max_s": round(max(stale, default=0.0), 6),
        },
    }
    if result is not None:
        report["kills"] = [
            [pid, round(t, 3)] for pid, t in result.kills
        ]
        report["oracle"] = check_shard_trace(result.trace)
        gateway = result.done.get(0, {}).get("service", {})
        report["ingress_requests"] = gateway.get("requests", 0)
        report["replies_forwarded"] = sum(
            d.get("service", {}).get("replies_forwarded", 0)
            for d in result.done.values()
        )
    return report


def run_service_bench(
    config: ServiceConfig, workdir: str, *, echo: Callable[[str], None] = print
) -> dict[str, Any]:
    """One full service run graded end to end; returns the payload."""
    start = time.time()
    manager = ShardManager(config, workdir)
    echo(
        f"booting {config.shards} shard(s) x {config.nodes_per_shard} "
        f"node(s) in {workdir}"
    )
    manager.start()
    manager.wait_ready()
    echo(
        f"driving {config.sessions} session(s), "
        f"{config.ops_per_session} op(s) each, "
        f"{config.keys} Zipf({config.zipf_s}) keys"
    )
    user_report = asyncio.run(
        _drive_users(config, manager.routing, manager.endpoints())
    )
    # Workload + settle + audit are done: end the run now instead of
    # sitting out the rest of the run_seconds cap.
    manager.stop()
    results = manager.join()

    per_shard = {
        str(shard): _shard_report(
            user_report["metrics"][shard], results.get(shard)
        )
        for shard in range(config.shards)
    }
    exactly_once = {
        "verified": (
            user_report["failed_ops"] == 0
            and not user_report["mismatches"]
            and user_report["monotonicity_violations"] == 0
            and user_report["audited_keys"] == user_report["expected_keys"]
        ),
        "audited_keys": user_report["audited_keys"],
        "mismatches": user_report["mismatches"],
        "monotonicity_violations": user_report["monotonicity_violations"],
    }
    oracles_ok = all(
        report.get("oracle", {}).get("ok", False)
        for report in per_shard.values()
    )
    payload = {
        "format": SERVICE_BENCH_FORMAT,
        "config": {
            "shards": config.shards,
            "nodes_per_shard": config.nodes_per_shard,
            "run_seconds": config.run_seconds,
            "crash_at": config.crash_at if config.crash_replicas else None,
            "downtime": config.downtime,
            "fault_seed": config.fault_seed,
            "sessions": config.sessions,
            "ops_per_session": config.ops_per_session,
            "keys": config.keys,
            "put_ratio": config.put_ratio,
            "zipf_s": config.zipf_s,
            "seed": config.seed,
            "request_timeout": config.request_timeout,
        },
        "routing": manager.routing.to_dict(),
        "ops_total": config.sessions * config.ops_per_session,
        "ops_failed": user_report["failed_ops"],
        "puts_acked": user_report["puts_acked"],
        "exactly_once": exactly_once,
        "per_shard": per_shard,
        "ok": bool(
            exactly_once["verified"]
            and oracles_ok
            and user_report["failed_ops"] == 0
        ),
        "wall_seconds": round(time.time() - start, 3),
    }
    return payload


def write_service_bench(
    out_path: str,
    workdir: str,
    config: ServiceConfig,
    *,
    echo: Callable[[str], None] = print,
) -> dict[str, Any]:
    """Run the bench and write ``BENCH_service.json`` atomically."""
    payload = run_service_bench(config, workdir, echo=echo)
    tmp = out_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, out_path)
    return payload


def check_service_payload(payload: dict[str, Any]) -> list[str]:
    """Schema + verdict gate for CI; returns problems (empty = pass)."""
    problems: list[str] = []
    if payload.get("format") != SERVICE_BENCH_FORMAT:
        problems.append(f"bad format {payload.get('format')!r}")
        return problems
    if payload.get("ops_failed"):
        problems.append(f"{payload['ops_failed']} op(s) never completed")
    exactly_once = payload.get("exactly_once", {})
    if not exactly_once.get("verified"):
        problems.append(
            "exactly-once not verified: "
            f"{exactly_once.get('mismatches')!r}, "
            f"{exactly_once.get('monotonicity_violations')} "
            "monotonicity violation(s)"
        )
    per_shard = payload.get("per_shard", {})
    if not per_shard:
        problems.append("no per-shard reports")
    for shard, report in sorted(per_shard.items()):
        oracle = report.get("oracle")
        if oracle is None:
            problems.append(f"shard {shard}: no trace oracle")
        elif not oracle.get("ok"):
            problems.append(
                f"shard {shard}: oracle FAIL: {oracle.get('failures')}"
            )
        for section in ("unavailability", "stale_reads", "latency_s"):
            if section not in report:
                problems.append(f"shard {shard}: missing {section}")
    return problems
