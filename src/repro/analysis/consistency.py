"""The recovery-correctness oracle.

:func:`check_recovery` grades a finished run against the ground truth of
:mod:`repro.analysis.causality`:

1. **No surviving orphan** -- after recovery quiesces, no state on a
   surviving chain causally depends on a lost state (the safety property of
   Theorem 2).
2. **Minimal rollback** -- every state a protocol undid by rollback really
   was an orphan (no needless rollback; together with check 3 this is the
   paper's "recovers the maximum recoverable state").
3. **Maximum recoverable state** -- the surviving states are exactly the
   useful ones: ``states - lost - orphans``.
4. **At most one rollback per failure** per process (Table 1 column 3).
5. **Exact obsolete detection** -- every message discarded as obsolete was
   really sent by a lost or orphan state (Lemma 4 soundness).
6. **No obsolete delivery survives** -- a message sent by a lost/orphan
   state never contributes a surviving state.

Checks 2-4 are *protocol* properties; baselines that do not promise them
(e.g. Strom-Yemini's multiple rollbacks) are graded with those checks
disabled, and the measured violation count becomes a Table 1 data point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.causality import GroundTruth, build_ground_truth
from repro.harness.runner import ExperimentResult


@dataclass
class RecoveryVerdict:
    """Outcome of the oracle; ``ok`` iff no enabled check failed."""

    ok: bool
    violations: list[str]
    ground_truth: GroundTruth
    orphans: set[tuple[int, int, int]]
    checks_run: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def check_recovery(
    result: ExperimentResult,
    *,
    expect_minimal_rollback: bool = True,
    expect_single_rollback_per_failure: bool = True,
    expect_maximum_recovery: bool = True,
    max_reported: int = 5,
) -> RecoveryVerdict:
    """Grade ``result``; see module docstring for the checks.

    Accepts anything result-shaped: an
    :class:`~repro.harness.runner.ExperimentResult` or a scripted
    :class:`~repro.harness.scenarios.ScenarioResult` (it only needs
    ``trace``, ``protocols`` and the network size).
    """
    gt = build_ground_truth(result.trace, result.network.n)
    orphans = gt.orphans()
    surviving = gt.surviving_states
    violations: list[str] = []
    checks = ["no_surviving_orphan", "obsolete_discards_sound",
              "no_obsolete_delivery_survives"]

    def report(label: str, bad: set) -> None:
        sample = sorted(bad)[:max_reported]
        violations.append(f"{label}: {len(bad)} states, e.g. {sample}")

    surviving_orphans = orphans & surviving
    if surviving_orphans:
        report("surviving orphan states", surviving_orphans)
    surviving_lost = gt.lost & surviving
    if surviving_lost:
        report("lost states still on a surviving chain", surviving_lost)

    if expect_minimal_rollback:
        checks.append("minimal_rollback")
        needless = gt.rolled_back - orphans
        if needless:
            report("needlessly rolled back (non-orphan) states", needless)

    if expect_maximum_recovery:
        checks.append("maximum_recoverable_state")
        useful = gt.states - gt.lost - orphans - gt.superseded
        missing = useful - surviving
        if missing:
            report("useful states not recovered", missing)

    if expect_single_rollback_per_failure:
        checks.append("single_rollback_per_failure")
        for protocol in result.protocols:
            worst = protocol.stats.max_rollbacks_for_single_failure
            if worst > 1:
                violations.append(
                    f"P{protocol.pid} rolled back {worst} times for one "
                    f"failure: {protocol.stats.rollbacks_per_failure}"
                )

    # Discard soundness: a message rejected as obsolete must come from a
    # state that did not survive (lost, orphan, or undone by the
    # protocol's own rollbacks -- coordinated checkpointing legitimately
    # discards messages from rolled-back non-orphan states).
    wrong_discards = {
        msg_id
        for msg_id in gt.obsolete_discards
        if msg_id in gt.send_info
        and gt.send_info[msg_id][0] in surviving
    }
    if wrong_discards:
        violations.append(
            f"messages discarded as obsolete but sent by surviving states: "
            f"{sorted(wrong_discards)[:max_reported]}"
        )

    # No obsolete delivery survives.
    bad_sender = gt.lost | orphans
    for msg_id, (sender_uid, _dst) in gt.send_info.items():
        if sender_uid not in bad_sender:
            continue
        survived = gt.delivery_states.get(msg_id, set()) & surviving
        if survived:
            violations.append(
                f"obsolete message {msg_id} (sender {sender_uid}) created "
                f"surviving states {sorted(survived)[:max_reported]}"
            )

    return RecoveryVerdict(
        ok=not violations,
        violations=violations,
        ground_truth=gt,
        orphans=orphans,
        checks_run=checks,
    )
