"""Ground-truth extended happen-before, lost states, and orphan states.

Everything here is computed from the substrate-written
:class:`~repro.sim.trace.SimTrace` alone -- never from protocol data
structures -- so it can judge any protocol, including a buggy one.

The reconstruction walks the trace in order, maintaining per-process state
*chains*:

- a live ``DELIVER`` appends the newly created state;
- a ``RESTORE`` (which the protocols record *before* replaying) pops the
  chain back to the restored checkpoint's state, tentatively marking the
  popped states undone with the restore's reason (``"restart"`` -> lost,
  ``"rollback"`` -> rolled back);
- replayed ``DELIVER`` events re-append their original uids, *rescuing*
  them from the undone set (a replayed state was recreated, hence neither
  lost nor undone);
- ``RESTART`` / ``ROLLBACK`` events append the fresh post-recovery state
  and contribute the local edge from the restored state (the paper's
  ``s11 -> r10`` and ``s21 -> r20`` edges).

After the walk:

- **lost(s)** holds iff ``s`` was popped by a restart-restore and never
  replayed -- exactly the paper's definition (a state of the failed version
  executed after the restored state);
- **orphan(s)** holds iff some lost state of *another* process reaches
  ``s`` through the happen-before edges -- again the paper's definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.trace import EventKind, SimTrace

StateUid = tuple[int, int, int]
Edge = tuple[StateUid, StateUid]


@dataclass
class GroundTruth:
    """The reconstructed truth about one finished run."""

    n: int
    states: set[StateUid] = field(default_factory=set)
    local_edges: set[Edge] = field(default_factory=set)
    message_edges: set[Edge] = field(default_factory=set)
    lost: set[StateUid] = field(default_factory=set)
    rolled_back: set[StateUid] = field(default_factory=set)
    #: states minted by recovery itself (the paper's r10/r20): they perform
    #: no computation and send no messages
    recovery_states: set[StateUid] = field(default_factory=set)
    #: recovery states later undone by a further restore; harmless (no
    #: computation is lost), tracked separately from lost/rolled_back
    superseded: set[StateUid] = field(default_factory=set)
    #: final surviving chain of each process, oldest state first
    surviving: dict[int, list[StateUid]] = field(default_factory=dict)
    #: msg_id -> (sender state uid, destination pid)
    send_info: dict[int, tuple[StateUid, int]] = field(default_factory=dict)
    #: msg_id -> uids of states its deliveries created
    delivery_states: dict[int, set[StateUid]] = field(default_factory=dict)
    #: msg_ids discarded with reason "obsolete"
    obsolete_discards: set[int] = field(default_factory=set)

    @property
    def edges(self) -> set[Edge]:
        return self.local_edges | self.message_edges

    @property
    def surviving_states(self) -> set[StateUid]:
        return {uid for chain in self.surviving.values() for uid in chain}

    def undone(self) -> set[StateUid]:
        return self.lost | self.rolled_back | self.superseded

    def useful(self) -> set[StateUid]:
        """The paper's useful states: neither lost nor orphan (nor a
        recovery marker that a later recovery superseded)."""
        return self.states - self.lost - self.orphans() - self.superseded

    # ------------------------------------------------------------------
    # Reachability / orphans
    # ------------------------------------------------------------------
    def successors(self) -> dict[StateUid, list[StateUid]]:
        adj: dict[StateUid, list[StateUid]] = {}
        for src, dst in self.edges:
            adj.setdefault(src, []).append(dst)
        return adj

    def reachable_from(self, sources: set[StateUid]) -> set[StateUid]:
        """All states reachable from ``sources`` via happen-before edges
        (excluding the sources themselves unless re-reached)."""
        adj = self.successors()
        seen: set[StateUid] = set()
        frontier = list(sources)
        while frontier:
            node = frontier.pop()
            for nxt in adj.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def orphans(self) -> set[StateUid]:
        """Paper Section 5: states of *other* processes that causally depend
        on a lost state.  (Same-process successors of a lost state are
        themselves lost, so subtracting ``lost`` leaves exactly the orphans.)
        """
        return self.reachable_from(self.lost) - self.lost

    def happens_before(self, a: StateUid, b: StateUid) -> bool:
        """Extended happen-before ``a -> b`` (transitive, irreflexive)."""
        return b in self.reachable_from({a})


def build_ground_truth(trace: SimTrace, n: int) -> GroundTruth:
    """Replay the trace and reconstruct the ground truth (module docstring)."""
    gt = GroundTruth(n=n)
    chains: dict[int, list[StateUid]] = {
        pid: [(pid, 0, 0)] for pid in range(n)
    }
    for pid in range(n):
        gt.states.add((pid, 0, 0))
    # uid -> undo reason, for states popped and not (yet) replayed
    undone: dict[StateUid, str] = {}

    for event in trace:
        kind = event.kind
        if kind is EventKind.SEND:
            gt.send_info[event["msg_id"]] = (event["uid"], event["dst"])
        elif kind is EventKind.DELIVER:
            uid: StateUid = event["uid"]
            prev: StateUid = event["prev_uid"]
            gt.states.add(uid)
            gt.local_edges.add((prev, uid))
            msg_id = event["msg_id"]
            gt.delivery_states.setdefault(msg_id, set()).add(uid)
            sender = gt.send_info.get(msg_id)
            if sender is not None:
                gt.message_edges.add((sender[0], uid))
            chains[event.pid].append(uid)
            undone.pop(uid, None)   # recreated => rescued
        elif kind is EventKind.RESTORE:
            ckpt_uid: StateUid = event["ckpt_uid"]
            chain = chains[event.pid]
            reason = event["reason"]
            while chain and chain[-1] != ckpt_uid:
                undone[chain.pop()] = reason
            if not chain:
                raise ValueError(
                    f"RESTORE to unknown state {ckpt_uid} on P{event.pid}"
                )
        elif kind in (EventKind.RESTART, EventKind.ROLLBACK):
            new_uid: StateUid = event["new_uid"]
            restored_uid: StateUid = event["restored_uid"]
            gt.states.add(new_uid)
            gt.recovery_states.add(new_uid)
            gt.local_edges.add((restored_uid, new_uid))
            chains[event.pid].append(new_uid)
        elif kind is EventKind.DISCARD:
            if event.get("reason") == "obsolete":
                gt.obsolete_discards.add(event["msg_id"])

    for uid, reason in undone.items():
        if uid in gt.recovery_states:
            # A recovery marker (r10/r20) replaced by a later recovery.  It
            # never computed or sent anything, so nothing depends on it and
            # it is neither "lost computation" nor an orphan rollback.
            gt.superseded.add(uid)
        elif reason == "restart":
            gt.lost.add(uid)
        else:
            gt.rolled_back.add(uid)
    gt.surviving = chains
    return gt
