"""Empirical verification of Theorem 1.

Theorem 1 (paper Section 4.1): for *useful* states ``s``, ``u`` of a
computation, ``s -> u  iff  s.clock < u.clock`` under the FTVC order.

:func:`check_theorem1` tests this exhaustively over every ordered pair of
useful states of a finished Damani-Garg run, using the protocol's
``clock_by_uid`` debug map for the clocks and the ground-truth graph for
the happen-before side.  It also confirms the paper's caveat that the
equivalence genuinely *fails* for non-useful states (the ``r20.c < s22.c``
example of Figure 1) by counting counterexamples among lost/orphan states.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.causality import build_ground_truth
from repro.harness.runner import ExperimentResult


@dataclass
class TheoremReport:
    ok: bool
    useful_states: int
    pairs_checked: int
    violations: list[str]
    #: (lost or orphan) pairs where clock order and happen-before disagree,
    #: demonstrating why the theorem is restricted to useful states.
    non_useful_counterexamples: int

    def __bool__(self) -> bool:
        return self.ok


def _descendants(adj, start):
    seen = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for nxt in adj.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def check_theorem1(
    result: ExperimentResult, *, max_states: int = 1500
) -> TheoremReport:
    """Check ``s -> u iff s.clock < u.clock`` over all useful-state pairs."""
    gt = build_ground_truth(result.trace, result.network.n)
    orphans = gt.orphans()
    useful = gt.states - gt.lost - orphans - gt.superseded

    clocks = {}
    for protocol in result.protocols:
        clock_map = getattr(protocol, "clock_by_uid", None)
        if clock_map is None:
            raise TypeError(
                f"{type(protocol).__name__} does not expose clock_by_uid; "
                "Theorem 1 can only be checked for the Damani-Garg protocol"
            )
        clocks.update(clock_map)

    # Only states whose clock was recorded participate (all useful states
    # created by deliveries/recovery have one; the check below confirms).
    tracked = sorted(u for u in useful if u in clocks)
    if len(tracked) > max_states:
        tracked = tracked[:max_states]
    tracked_set = set(tracked)

    adj = gt.successors()
    violations: list[str] = []
    pairs = 0
    for s in tracked:
        reach = _descendants(adj, s) & tracked_set
        for u in tracked:
            if u == s:
                continue
            pairs += 1
            hb = u in reach
            clk = clocks[s] < clocks[u]
            if hb != clk:
                violations.append(
                    f"{s} -> {u}: happen-before={hb} but clock<={clk} "
                    f"({clocks[s]!r} vs {clocks[u]!r})"
                )
                if len(violations) >= 10:
                    break
        if len(violations) >= 10:
            break

    # The negative control: among non-useful states the equivalence may
    # break (Figure 1's r20/s22).  Count a few such pairs.
    non_useful = sorted(
        (u for u in (gt.lost | orphans | gt.superseded) if u in clocks),
        key=str,
    )[:100]
    counterexamples = 0
    for s in tracked[:100]:
        reach = _descendants(adj, s)
        for u in non_useful:
            hb = u in reach
            clk = clocks[s] < clocks[u]
            if hb != clk:
                counterexamples += 1

    return TheoremReport(
        ok=not violations,
        useful_states=len(tracked),
        pairs_checked=pairs,
        violations=violations,
        non_useful_counterexamples=counterexamples,
    )
