"""Protocol-independent analysis: ground truth, oracles, metrics.

- :mod:`repro.analysis.causality` -- rebuilds the paper's extended
  happen-before relation (Section 3) from the substrate trace and computes
  the ground-truth *lost* and *orphan* state sets.
- :mod:`repro.analysis.consistency` -- :func:`check_recovery`, the oracle
  asserting that a run recovered correctly (no surviving orphans, minimal
  rollback, at most one rollback per failure, exact obsolete detection).
- :mod:`repro.analysis.theorem` -- checks Theorem 1 (FTVC order == extended
  happen-before on useful states) exhaustively on a finished run.
- :mod:`repro.analysis.recoverability` -- maximum-recoverable-state
  computation in the style of Johnson & Zwaenepoel [12].
- :mod:`repro.analysis.metrics` -- overhead accounting for Section 6.9.
- :mod:`repro.analysis.predicates` -- weak unstable predicate detection
  with FTVCs (the Section 4 "other applications" claim, Garg-Waldecker [9]).
"""

from repro.analysis.causality import GroundTruth, build_ground_truth
from repro.analysis.consistency import RecoveryVerdict, check_recovery
from repro.analysis.metrics import (
    OverheadReport,
    RecoveryLatency,
    measure_overhead,
    recovery_latencies,
)
from repro.analysis.monitor import TraceDisciplineError, TraceMonitor
from repro.analysis.visualize import result_to_dot, to_dot
from repro.analysis.predicates import (
    PredicateWitness,
    detect_weak_conjunctive,
)
from repro.analysis.recoverability import (
    maximum_recoverable_cut,
    recovery_line,
)
from repro.analysis.theorem import TheoremReport, check_theorem1

__all__ = [
    "GroundTruth",
    "OverheadReport",
    "PredicateWitness",
    "RecoveryLatency",
    "RecoveryVerdict",
    "TheoremReport",
    "TraceDisciplineError",
    "TraceMonitor",
    "build_ground_truth",
    "check_recovery",
    "check_theorem1",
    "detect_weak_conjunctive",
    "maximum_recoverable_cut",
    "measure_overhead",
    "recovery_latencies",
    "recovery_line",
    "result_to_dot",
    "to_dot",
]
