"""Export the ground-truth causality graph as Graphviz DOT.

``to_dot`` renders the extended happen-before relation of a finished run
with the recovery outcome colour-coded -- the fastest way to *see* why a
particular state was rolled back:

- surviving states: solid boxes, one horizontal rank per process;
- lost states: red, dashed;
- orphans: orange;
- superseded recovery markers: grey;
- message edges: solid arrows; local edges: thin; edges out of lost
  states (the infection paths): red.

No graphviz dependency is required to *produce* the text; render it with
``dot -Tsvg out.dot`` wherever graphviz exists.
"""

from __future__ import annotations

from repro.analysis.causality import GroundTruth, StateUid, build_ground_truth


def _node_id(uid: StateUid) -> str:
    return f"s_{uid[0]}_{uid[1]}_{uid[2]}"


def _label(uid: StateUid) -> str:
    return f"P{uid[0]}·{uid[1]}.{uid[2]}"


def to_dot(
    gt: GroundTruth,
    *,
    title: str = "extended happen-before",
    max_states: int = 400,
) -> str:
    """Render ``gt`` as a DOT digraph string.

    Raises ``ValueError`` when the run is too large to plot usefully
    (``max_states``); filter the trace or raise the cap explicitly.
    """
    if len(gt.states) > max_states:
        raise ValueError(
            f"{len(gt.states)} states exceed max_states={max_states}; "
            "pass a larger cap to plot anyway"
        )
    orphans = gt.orphans()
    lines = [
        "digraph recovery {",
        f'  label="{title}";',
        "  rankdir=LR;",
        "  node [shape=box, fontsize=10, height=0.25];",
    ]

    for pid in sorted({uid[0] for uid in gt.states}):
        lines.append(f"  subgraph cluster_p{pid} {{")
        lines.append(f'    label="P{pid}";')
        lines.append("    style=dashed; color=gray;")
        for uid in sorted(u for u in gt.states if u[0] == pid):
            style = 'style=solid'
            color = "black"
            if uid in gt.lost:
                style, color = "style=dashed", "red"
            elif uid in orphans:
                style, color = "style=solid", "orange"
            elif uid in gt.superseded:
                style, color = "style=dotted", "gray"
            elif uid in gt.recovery_states:
                color = "blue"
            lines.append(
                f'    {_node_id(uid)} [label="{_label(uid)}", '
                f'{style}, color={color}];'
            )
        lines.append("  }")

    for src, dst in sorted(gt.local_edges):
        color = "red" if src in gt.lost else "gray40"
        lines.append(
            f"  {_node_id(src)} -> {_node_id(dst)} "
            f"[color={color}, penwidth=0.5];"
        )
    for src, dst in sorted(gt.message_edges):
        color = "red" if (src in gt.lost or src in orphans) else "black"
        lines.append(f"  {_node_id(src)} -> {_node_id(dst)} [color={color}];")

    lines.append("}")
    return "\n".join(lines)


def result_to_dot(result, **kwargs) -> str:
    """Convenience wrapper: build the ground truth and render it."""
    gt = build_ground_truth(result.trace, result.network.n)
    return to_dot(gt, **kwargs)
