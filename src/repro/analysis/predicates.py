"""Weak conjunctive predicate detection on top of the FTVC.

The paper presents the FTVC as being "of independent interest as it can
also be applied to other distributed algorithms such as distributed
predicate detection [9]".  This module makes that claim concrete: the
classic Garg-Waldecker detection of *weak conjunctive predicates* --
"is there a consistent global state in which every local predicate
holds?" -- run over the useful states of a computation that suffered
failures and rollbacks, using FTVC comparisons for the consistency test
(valid on useful states by Theorem 1).

The algorithm is the standard queue-advancing scan: hold one candidate
state per process; while some pair of candidates is causally ordered, the
earlier one cannot belong to a consistent cut containing the later one's
process, so advance it; if all candidates are pairwise concurrent, they
form the witness cut.

Requires a run made with ``ExperimentSpec(record_states=True)`` and a
protocol exposing ``clock_by_uid`` (the Damani-Garg family).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.causality import build_ground_truth
from repro.harness.runner import ExperimentResult

LocalPredicate = Callable[[Any], bool]


@dataclass(frozen=True)
class PredicateWitness:
    """A consistent cut on which every local predicate held."""

    states: tuple[tuple[int, int, int], ...]     # one uid per process
    values: tuple[Any, ...]                      # application states
    clocks: tuple[Any, ...]                      # FTVCs at those states


def detect_weak_conjunctive(
    result: ExperimentResult,
    predicates: Mapping[int, LocalPredicate] | Sequence[LocalPredicate],
) -> PredicateWitness | None:
    """First consistent cut (over useful states) satisfying every local
    predicate; ``None`` if no such cut exists.

    ``predicates`` maps pid -> predicate (or is a sequence indexed by pid);
    processes not mentioned are unconstrained and excluded from the cut.
    """
    if not isinstance(predicates, Mapping):
        predicates = dict(enumerate(predicates))
    if not predicates:
        raise ValueError("at least one local predicate is required")

    gt = build_ground_truth(result.trace, result.network.n)
    useful = gt.useful()

    clocks: dict = {}
    states: dict = {}
    for protocol in result.protocols:
        clock_map = getattr(protocol, "clock_by_uid", None)
        if clock_map is None:
            raise TypeError(
                f"{type(protocol).__name__} does not expose clock_by_uid"
            )
        clocks.update(clock_map)
        states.update(protocol.executor.state_by_uid)
    if not states or len(states) <= result.network.n:
        raise ValueError(
            "no recorded application states: run the experiment with "
            "ExperimentSpec(record_states=True)"
        )

    # Candidate queues: useful states on the surviving chain where the
    # local predicate holds, in execution order.
    pids = sorted(predicates)
    queues: dict[int, list] = {}
    for pid in pids:
        predicate = predicates[pid]
        queue = [
            uid
            for uid in gt.surviving[pid]
            if uid in useful
            and uid in clocks
            and uid in states
            and predicate(states[uid])
        ]
        if not queue:
            return None
        queues[pid] = queue

    heads = {pid: 0 for pid in pids}
    while True:
        try:
            front = {pid: queues[pid][heads[pid]] for pid in pids}
        except IndexError:
            return None
        advanced = False
        for i in pids:
            for j in pids:
                if i == j:
                    continue
                if clocks[front[i]] < clocks[front[j]]:
                    # front[i] causally precedes front[j]: it can never be
                    # concurrent with front[j] or any later state of j.
                    heads[i] += 1
                    advanced = True
                    break
            if advanced:
                break
        if not advanced:
            uids = tuple(front[pid] for pid in pids)
            return PredicateWitness(
                states=uids,
                values=tuple(states[uid] for uid in uids),
                clocks=tuple(clocks[uid] for uid in uids),
            )
