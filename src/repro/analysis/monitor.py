"""Online trace-schema validation.

The analysis oracles reconstruct everything from the trace, so a protocol
that records malformed trace events silently corrupts its own grading.
:class:`TraceMonitor` validates the trace discipline *as events are
recorded* and fails at the first violation -- invaluable when implementing
a new protocol against the substrate.

Checked invariants (the contract `analysis/causality.py` depends on):

- ``DELIVER.prev_uid`` is the current tip of that process's chain;
- ``RESTORE.ckpt_uid`` is on the current chain (you cannot restore a
  state that never existed or was already undone);
- ``RESTART``/``ROLLBACK`` ``restored_uid`` equals the chain tip left by
  the preceding ``RESTORE`` (+replay), and their ``new_uid`` is fresh;
- ``SEND.uid`` names an existing state of the sender;
- state uids are never minted twice;
- every ``RESTORE`` is eventually followed by a ``RESTART``/``ROLLBACK``
  on the same process before its next ``RESTORE`` (checked on `finish`).
"""

from __future__ import annotations

from repro.sim.trace import EventKind, SimTrace, TraceEvent


class TraceDisciplineError(AssertionError):
    """A protocol broke the trace contract."""


class TraceMonitor:
    """Attach with :meth:`install`; every record() is then validated."""

    def __init__(self, n: int) -> None:
        self.n = n
        self._chains: dict[int, list] = {
            pid: [(pid, 0, 0)] for pid in range(n)
        }
        self._known: set = {(pid, 0, 0) for pid in range(n)}
        self._minted: set = set(self._known)
        self._open_restore: dict[int, tuple] = {}
        self.events_checked = 0

    # ------------------------------------------------------------------
    def install(self, trace: SimTrace) -> "TraceMonitor":
        """Wrap ``trace.record`` so every event passes through us."""
        original = trace.record

        def recording(time, kind, pid, **fields):
            event = original(time, kind, pid, **fields)
            self.check(event)
            return event

        trace.record = recording  # type: ignore[method-assign]
        return self

    # ------------------------------------------------------------------
    def check(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind is EventKind.DELIVER:
            self._on_deliver(event)
        elif kind is EventKind.RESTORE:
            self._on_restore(event)
        elif kind in (EventKind.RESTART, EventKind.ROLLBACK):
            self._on_recovery(event)
        elif kind is EventKind.SEND:
            self._on_send(event)
        self.events_checked += 1

    def _fail(self, event: TraceEvent, message: str) -> None:
        raise TraceDisciplineError(
            f"trace discipline violated at event #{event.seq} "
            f"({event.kind.value}, P{event.pid}, t={event.time}): {message}"
        )

    def _tip(self, pid: int):
        return self._chains[pid][-1]

    def _on_deliver(self, event: TraceEvent) -> None:
        pid = event.pid
        uid = event.get("uid")
        prev = event.get("prev_uid")
        if uid is None or prev is None:
            self._fail(event, "DELIVER must carry uid and prev_uid")
        if prev != self._tip(pid):
            self._fail(
                event,
                f"prev_uid {prev} is not the chain tip {self._tip(pid)}",
            )
        replay = bool(event.get("replay"))
        if not replay and uid in self._minted:
            self._fail(event, f"uid {uid} minted twice")
        if replay and uid not in self._minted:
            self._fail(event, f"replay of never-created uid {uid}")
        self._minted.add(uid)
        self._known.add(uid)
        self._chains[pid].append(uid)

    def _on_restore(self, event: TraceEvent) -> None:
        pid = event.pid
        target = event.get("ckpt_uid")
        if target is None:
            self._fail(event, "RESTORE must carry ckpt_uid")
        chain = self._chains[pid]
        if target not in chain:
            self._fail(event, f"restore target {target} not on the chain")
        while chain[-1] != target:
            chain.pop()
        self._open_restore[pid] = target

    def _on_recovery(self, event: TraceEvent) -> None:
        pid = event.pid
        restored = event.get("restored_uid")
        new_uid = event.get("new_uid")
        if restored is None or new_uid is None:
            self._fail(event, "must carry restored_uid and new_uid")
        if restored != self._tip(pid):
            self._fail(
                event,
                f"restored_uid {restored} is not the chain tip "
                f"{self._tip(pid)} (did replay diverge?)",
            )
        if new_uid in self._minted:
            self._fail(event, f"recovery state {new_uid} minted twice")
        self._minted.add(new_uid)
        self._known.add(new_uid)
        self._chains[pid].append(new_uid)
        self._open_restore.pop(pid, None)

    def _on_send(self, event: TraceEvent) -> None:
        uid = event.get("uid")
        if uid is None:
            self._fail(event, "SEND must carry the sender state uid")
        if uid not in self._known:
            self._fail(event, f"send from unknown state {uid}")

    # ------------------------------------------------------------------
    def finish(self) -> None:
        """End-of-run check: no restore left dangling."""
        if self._open_restore:
            raise TraceDisciplineError(
                f"RESTORE without a matching RESTART/ROLLBACK on "
                f"{sorted(self._open_restore)}"
            )
