"""Maximum recoverable state, in the style of Johnson & Zwaenepoel [12].

The *maximum recoverable cut* after a set of failures is the largest
consistent global state constructible from stable storage: start from each
process's stable prefix (checkpoint plus logged messages) and repeatedly
retract states that causally depend on retracted states of other processes.

For a finished run the fixed point equals ``states - lost - orphans`` of
the ground truth; :func:`maximum_recoverable_cut` computes it directly from
per-process chains and message edges with the classic iterative algorithm,
and the consistency oracle uses it to certify the paper's "recovers the
maximum recoverable state" claim.
"""

from __future__ import annotations

from repro.analysis.causality import GroundTruth, StateUid


def maximum_recoverable_cut(gt: GroundTruth) -> set[StateUid]:
    """The largest orphan-free state set given the ground-truth lost states.

    Iterative retraction: begin with every state that is not lost; while
    some remaining state causally depends (via a message edge, transitively
    through local order) on a retracted state, retract it too.  Terminates
    because each round strictly shrinks the set.
    """
    alive = set(gt.states) - gt.lost
    # Precompute, per state, its direct causal predecessors.
    preds: dict[StateUid, list[StateUid]] = {}
    for src, dst in gt.edges:
        preds.setdefault(dst, []).append(src)

    changed = True
    while changed:
        changed = False
        for state in list(alive):
            for pred in preds.get(state, ()):
                if pred not in alive:
                    alive.discard(state)
                    changed = True
                    break
    return alive


def recovery_line(gt: GroundTruth) -> dict[int, StateUid | None]:
    """Per process: the maximal surviving state of the recoverable cut
    along the final chain (``None`` if only the initial state survives
    nowhere -- cannot happen with our substrate, kept for totality)."""
    cut = maximum_recoverable_cut(gt)
    line: dict[int, StateUid | None] = {}
    for pid, chain in gt.surviving.items():
        best = None
        for uid in chain:
            if uid in cut:
                best = uid
        line[pid] = best
    return line
