"""Overhead accounting (paper Section 6.9).

:func:`measure_overhead` condenses a finished run into the quantities the
paper's overhead analysis talks about:

1. **FTVC piggyback** -- clock entries (and estimated bits, including the
   ``log f`` version bits) attached per application message;
2. **Token broadcast** -- control messages sent, which must be zero during
   failure-free operation and ``n - 1`` per failure;
3. **History memory** -- records held per process, bounded by O(n·f).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.harness.runner import ExperimentResult
from repro.sim.trace import EventKind


def percentile(values: list[float], q: float) -> float | None:
    """Nearest-rank percentile (no interpolation).

    The nearest-rank definition: the q-th percentile of n ordered samples
    is the value at rank ``ceil(q * n)`` (1-based), clamped to at least
    rank 1 so ``q=0`` returns the minimum.  For two samples, p50 is the
    *lower* one -- ``int(q * n)`` style truncation is off by one there and
    returns the maximum instead.  Returns ``None`` for an empty list.
    """
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class OverheadReport:
    """Aggregated overhead numbers for one run."""

    n: int
    failures: int
    app_messages: int
    control_messages: int
    piggyback_entries_total: int
    piggyback_bits_total: int
    # Clock bits under the per-link delta encoding (full clock on the
    # first send of a link and after crashes, diffs otherwise).  Zero
    # for protocols that do not implement the delta scheme.
    piggyback_delta_bits_total: int
    history_records_max: int
    history_bound: int              # n * (max failures of any process + 1)
    checkpoints_taken: int
    log_flushes: int
    sync_writes: int
    rollbacks: int
    restarts: int
    replayed: int

    @property
    def piggyback_entries_per_message(self) -> float:
        if not self.app_messages:
            return 0.0
        return self.piggyback_entries_total / self.app_messages

    @property
    def piggyback_bits_per_message(self) -> float:
        if not self.app_messages:
            return 0.0
        return self.piggyback_bits_total / self.app_messages

    @property
    def wire_bytes_per_message(self) -> float:
        """Full-clock piggyback cost per app message, in bytes."""
        if not self.app_messages:
            return 0.0
        return self.piggyback_bits_total / 8 / self.app_messages

    @property
    def delta_wire_bytes_per_message(self) -> float | None:
        """Delta-encoded piggyback cost per app message (None if the
        protocol does not delta-encode its clocks)."""
        if not self.app_messages or not self.piggyback_delta_bits_total:
            return None
        return self.piggyback_delta_bits_total / 8 / self.app_messages

    @property
    def fsyncs_per_message(self) -> float:
        if not self.app_messages:
            return 0.0
        return self.sync_writes / self.app_messages

    @property
    def control_messages_per_failure(self) -> float:
        if not self.failures:
            return 0.0
        return self.control_messages / self.failures

    @property
    def history_within_bound(self) -> bool:
        return self.history_records_max <= self.history_bound

    def to_dict(self) -> dict:
        """JSON-serialisable form, fields plus the derived ratios.

        Consumed by the observability exporters (``BENCH_obs.json`` and
        the metrics report of ``python -m repro trace``).
        """
        from dataclasses import asdict

        out = asdict(self)
        out["piggyback_entries_per_message"] = (
            self.piggyback_entries_per_message
        )
        out["piggyback_bits_per_message"] = self.piggyback_bits_per_message
        out["wire_bytes_per_message"] = self.wire_bytes_per_message
        out["delta_wire_bytes_per_message"] = (
            self.delta_wire_bytes_per_message
        )
        out["fsyncs_per_message"] = self.fsyncs_per_message
        out["control_messages_per_failure"] = (
            self.control_messages_per_failure
        )
        out["history_within_bound"] = self.history_within_bound
        return out


def measure_overhead(result: ExperimentResult) -> OverheadReport:
    """Extract the Section 6.9 overhead quantities from ``result``."""
    failures = result.trace.count(EventKind.CRASH)
    history_max = 0
    for protocol in result.protocols:
        history = getattr(protocol, "history", None)
        if history is not None and hasattr(history, "size"):
            history_max = max(history_max, history.size())
    max_per_process_failures = max(
        (host.crash_count for host in result.hosts), default=0
    )
    return OverheadReport(
        n=result.spec.n,
        failures=failures,
        app_messages=result.total("app_sent"),
        control_messages=result.total("control_sent"),
        piggyback_entries_total=result.total("piggyback_entries"),
        piggyback_bits_total=result.total("piggyback_bits"),
        piggyback_delta_bits_total=result.total("piggyback_delta_bits"),
        history_records_max=history_max,
        history_bound=result.spec.n * (max_per_process_failures + 1),
        checkpoints_taken=sum(
            p.storage.checkpoints.taken_count for p in result.protocols
        ),
        log_flushes=sum(
            p.storage.log.flush_count for p in result.protocols
        ),
        sync_writes=sum(p.storage.sync_writes for p in result.protocols),
        rollbacks=result.total_rollbacks,
        restarts=result.total_restarts,
        replayed=result.total("replayed"),
    )


@dataclass
class RecoveryLatency:
    """Timing of one failure's recovery.

    - ``restart_latency``: crash -> the failed process computing again
      (includes the scheduled downtime; anything beyond it is protocol
      waiting).
    - ``settle_latency``: crash -> the last recovery action anywhere that
      is attributable to this failure (rollbacks at peers, the restart
      itself) -- when the whole system has absorbed the failure.
    """

    pid: int
    crash_time: float
    restart_time: float | None
    settle_time: float | None

    @property
    def restart_latency(self) -> float | None:
        if self.restart_time is None:
            return None
        return self.restart_time - self.crash_time

    @property
    def settle_latency(self) -> float | None:
        if self.settle_time is None:
            return None
        return self.settle_time - self.crash_time


def recovery_latencies(result: ExperimentResult) -> list[RecoveryLatency]:
    """Per-crash recovery timing, reconstructed from the trace.

    The restart is matched as the failed process's first RESTART event
    after the crash; the settle point is the latest of that restart and
    every ROLLBACK that falls between this crash's recovery and the next
    crash (rollbacks are attributed by time window, which is exact for
    non-overlapping recoveries and approximate when recoveries overlap).
    """
    crashes = result.trace.events(EventKind.CRASH)
    restarts = result.trace.events(EventKind.RESTART)
    rollbacks = result.trace.events(EventKind.ROLLBACK)
    latencies: list[RecoveryLatency] = []
    for index, crash in enumerate(crashes):
        next_crash_time = (
            crashes[index + 1].time if index + 1 < len(crashes) else None
        )
        restart = next(
            (
                e
                for e in restarts
                if e.pid == crash.pid and e.time >= crash.time
            ),
            None,
        )
        settle = restart.time if restart is not None else None
        for rollback in rollbacks:
            if rollback.time < crash.time:
                continue
            if next_crash_time is not None and rollback.time >= next_crash_time:
                continue
            settle = max(settle or 0.0, rollback.time)
        latencies.append(
            RecoveryLatency(
                pid=crash.pid,
                crash_time=crash.time,
                restart_time=restart.time if restart is not None else None,
                settle_time=settle,
            )
        )
    return latencies
