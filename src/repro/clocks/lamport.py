"""Lamport's scalar logical clock (Lamport 1978, paper reference [14])."""

from __future__ import annotations


class LamportClock:
    """A scalar clock: ``a -> b`` implies ``C(a) < C(b)`` (not iff)."""

    def __init__(self, initial: int = 0) -> None:
        if initial < 0:
            raise ValueError("clock cannot be negative")
        self._value = initial

    @property
    def value(self) -> int:
        return self._value

    def tick(self) -> int:
        """Advance for a local or send event; returns the new value."""
        self._value += 1
        return self._value

    def merge(self, other: int) -> int:
        """Advance for a receive carrying timestamp ``other``."""
        if other < 0:
            raise ValueError("received timestamp cannot be negative")
        self._value = max(self._value, other) + 1
        return self._value

    def __repr__(self) -> str:
        return f"LamportClock({self._value})"
