"""Logical clocks: Lamport scalar clocks and Mattern vector clocks.

These are the failure-free foundations that the paper's Fault-Tolerant
Vector Clock (:mod:`repro.core.ftvc`) extends.  Several Table 1 baseline
protocols use the plain vector clock directly.
"""

from repro.clocks.lamport import LamportClock
from repro.clocks.vector import VectorClock

__all__ = ["LamportClock", "VectorClock"]
