"""Mattern's vector clock (paper reference [17]).

In a failure-free run, ``s -> u  iff  s.clock < u.clock`` for the
component-wise order.  The FTVC of :mod:`repro.core.ftvc` restores this
equivalence for *useful* states when processes fail and roll back.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class VectorClock:
    """An immutable-by-convention vector of per-process counters.

    Methods return new instances; nothing mutates in place.  This keeps
    clocks safe to stash inside checkpoints, log entries and trace events.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Sequence[int]) -> None:
        if not entries:
            raise ValueError("vector clock needs at least one entry")
        if any(e < 0 for e in entries):
            raise ValueError(f"negative clock entry in {entries!r}")
        self._entries = tuple(entries)

    @classmethod
    def zero(cls, n: int) -> "VectorClock":
        return cls((0,) * n)

    @classmethod
    def initial(cls, pid: int, n: int) -> "VectorClock":
        """The conventional start: own component 1, the rest 0."""
        entries = [0] * n
        entries[pid] = 1
        return cls(entries)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, i: int) -> int:
        return self._entries[i]

    def __iter__(self):
        return iter(self._entries)

    @property
    def entries(self) -> tuple[int, ...]:
        return self._entries

    # ------------------------------------------------------------------
    # Clock operations
    # ------------------------------------------------------------------
    def tick(self, pid: int) -> "VectorClock":
        """Advance the ``pid`` component by one."""
        entries = list(self._entries)
        entries[pid] += 1
        return VectorClock(entries)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (receive rule, before the local tick)."""
        if len(other) != len(self):
            raise ValueError("vector clock length mismatch")
        return VectorClock(
            tuple(max(a, b) for a, b in zip(self._entries, other._entries))
        )

    # ------------------------------------------------------------------
    # Partial order
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __le__(self, other: "VectorClock") -> bool:
        if len(other) != len(self):
            raise ValueError("vector clock length mismatch")
        return all(a <= b for a, b in zip(self._entries, other._entries))

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self != other

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates: the states are causally unrelated."""
        return not (self <= other) and not (other <= self)

    def __repr__(self) -> str:
        return f"VectorClock({list(self._entries)})"
