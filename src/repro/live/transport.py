"""Reconnecting full-mesh TCP transport for the live cluster.

Channel model: the simulator's network is *reliable* -- a message sent is
eventually delivered, surviving receiver downtime (buffered) and sender
downtime (still in flight).  The live transport reproduces that with:

- one outbound TCP link per peer, redialled with exponential backoff
  whenever it drops (peer crashed, not yet started, transient error);
- per-link sequence numbers with cumulative acknowledgements; an entry
  leaves the sender's outbox only when the receiver has acknowledged
  *processing* it, so anything in doubt is retransmitted on reconnect;
- a **durable** outbox (persisted in the sender's
  :class:`~repro.live.storage.FileStableStorage`), so even a SIGKILLed
  sender retransmits its unacknowledged messages when it comes back --
  without this, messages "in flight" at a sender crash would be lost,
  which the paper's channel assumption forbids;
- receiver-side dedup keyed by ``(sender pid, sender boot)``: retransmits
  of already-processed entries are acknowledged but not re-delivered.
  After a *receiver* crash its dedup state is gone, so unacknowledged
  messages are delivered again -- exactly the redelivery a restarted
  simulated process gets -- and protocol-level dedup ids absorb the
  overlap, just as they absorb duplicates under the simulator's
  ``duplicate_rate``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import sys
import time
from typing import Any

from repro.live import codec
from repro.live.framing import FramingError, read_frame, write_frame
from repro.runtime.message import NetworkMessage

_OUTBOX_KEY = "transport_outbox"
_SEQ_KEY = "transport_next_seq"

_BACKOFF_FLOOR = 0.05
_BACKOFF_CEIL = 1.0
_IDLE_POLL = 0.5

#: Set REPRO_LIVE_DEBUG=1 to log connection and dedup decisions to stderr
#: (they end up in the node's log file).
_DEBUG = os.environ.get("REPRO_LIVE_DEBUG", "") not in ("", "0")


def _dbg(msg: str) -> None:
    if _DEBUG:
        print(f"[transport {time.time():.3f}] {msg}",
              file=sys.stderr, flush=True)


class MeshTransport:
    """Mesh endpoint for one live process."""

    def __init__(
        self,
        pid: int,
        n: int,
        ports: list[int],
        *,
        host: str = "127.0.0.1",
        boot: int = 0,
        storage: Any | None = None,
    ) -> None:
        self.pid = pid
        self.n = n
        self.ports = ports
        self.host = host
        self.boot = boot
        self.storage = storage
        self._protocol: Any | None = None
        self._undelivered: list[NetworkMessage] = []
        self._outbox: dict[int, list[tuple[int, bytes]]] = {
            dst: [] for dst in range(n) if dst != pid
        }
        self._next_seq: dict[int, int] = {
            dst: 1 for dst in range(n) if dst != pid
        }
        self._wake: dict[int, asyncio.Event] = {}
        self._seen: dict[tuple[int, int], int] = {}
        self._max_written: dict[int, int] = {}
        self._server: asyncio.AbstractServer | None = None
        self._tasks: list[asyncio.Task] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._running = False
        self.sent_count = 0
        self.delivered_count = 0
        self.retransmit_count = 0
        self.deliver_errors = 0
        if storage is not None:
            self._outbox.update(
                {
                    int(dst): [(seq, payload) for seq, payload in entries]
                    for dst, entries in storage.get(_OUTBOX_KEY, {}).items()
                }
            )
            self._next_seq.update(
                {
                    int(dst): seq
                    for dst, seq in storage.get(_SEQ_KEY, {}).items()
                }
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._running = True
        for dst in self._outbox:
            self._wake[dst] = asyncio.Event()
            if self._outbox[dst]:
                # Reloaded entries from a previous incarnation: the peer
                # loop retransmits them as soon as it connects.
                self._wake[dst].set()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.ports[self.pid]
        )
        for dst in self._outbox:
            self._tasks.append(asyncio.create_task(self._peer_loop(dst)))

    async def stop(self) -> None:
        self._running = False
        for task in list(self._tasks) + list(self._conn_tasks):
            task.cancel()
        for task in list(self._tasks) + list(self._conn_tasks):
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._tasks.clear()
        self._conn_tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def attach(self, protocol: Any) -> None:
        if self._protocol is not None:
            raise RuntimeError(
                f"transport {self.pid} already has a protocol"
            )
        self._protocol = protocol
        if not self._undelivered:
            return
        # Defer the drain one loop iteration so the caller can finish
        # constructing/recovering the protocol (on_start / on_restart)
        # before buffered messages hit it.  Outside a running loop --
        # synchronous tests -- deliver inline.
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            self._drain_undelivered()
            return
        loop.call_soon(self._drain_undelivered)

    def _drain_undelivered(self) -> None:
        pending, self._undelivered = self._undelivered, []
        for msg in pending:
            self._deliver(msg)

    @property
    def unacked(self) -> int:
        """Outbox entries not yet acknowledged by their receivers."""
        return sum(len(entries) for entries in self._outbox.values())

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: int, msg: NetworkMessage) -> None:
        """Queue ``msg`` for ``dst``; delivery is asynchronous."""
        if dst == self.pid:
            asyncio.get_running_loop().call_soon(self._deliver, msg)
            return
        seq = self._next_seq[dst]
        self._next_seq[dst] = seq + 1
        payload = json.dumps(
            {"seq": seq, "msg": codec.encode(msg)},
            separators=(",", ":"),
        ).encode("utf-8")
        self._outbox[dst].append((seq, payload))
        self._persist_outbox()
        self.sent_count += 1
        if dst in self._wake:
            self._wake[dst].set()

    def _persist_outbox(self) -> None:
        if self.storage is None:
            return
        self.storage.put(
            _OUTBOX_KEY,
            {dst: list(entries) for dst, entries in self._outbox.items()},
        )
        self.storage.put(_SEQ_KEY, dict(self._next_seq))

    # ------------------------------------------------------------------
    # Outbound side: dial, retransmit, consume acks
    # ------------------------------------------------------------------
    async def _peer_loop(self, dst: int) -> None:
        backoff = _BACKOFF_FLOOR
        while self._running:
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.ports[dst]
                )
            except OSError:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, _BACKOFF_CEIL)
                continue
            backoff = _BACKOFF_FLOOR
            _dbg(f"p{self.pid}(boot {self.boot}) connected -> p{dst}")
            ack_task = asyncio.create_task(self._ack_loop(dst, reader))
            try:
                hello = json.dumps(
                    {"hello": {"pid": self.pid, "boot": self.boot}}
                ).encode("utf-8")
                await write_frame(writer, hello)
                await self._pump(dst, writer, ack_task)
            except (ConnectionError, OSError, FramingError):
                pass
            except asyncio.CancelledError:
                raise
            except Exception:   # noqa: BLE001 -- an unexpected error must
                import traceback    # surface in the log, then the link

                traceback.print_exc()   # redials like any other drop
            finally:
                ack_task.cancel()
                with contextlib.suppress(
                    asyncio.CancelledError, ConnectionError, OSError
                ):
                    await ack_task
                writer.close()
                with contextlib.suppress(ConnectionError, OSError):
                    await writer.wait_closed()

    async def _pump(
        self, dst: int, writer: asyncio.StreamWriter, ack_task: asyncio.Task
    ) -> None:
        """Write outbox entries in order until the connection dies."""
        sent_marker = 0   # highest seq written on *this* connection
        while self._running:
            if ack_task.done():
                return   # read side saw the connection drop
            entry = next(
                (e for e in self._outbox[dst] if e[0] > sent_marker), None
            )
            if entry is None:
                self._wake[dst].clear()
                if any(e[0] > sent_marker for e in self._outbox[dst]):
                    continue   # raced with send()
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._wake[dst].wait(), timeout=_IDLE_POLL
                    )
                continue
            seq, payload = entry
            await write_frame(writer, payload)
            if seq <= self._max_written.get(dst, 0):
                self.retransmit_count += 1
            else:
                self._max_written[dst] = seq
            sent_marker = seq

    async def _ack_loop(self, dst: int, reader: asyncio.StreamReader) -> None:
        while self._running:
            data = await read_frame(reader)
            if data is None:
                return
            acked = json.loads(data.decode("utf-8")).get("ack")
            if acked is None:
                continue
            before = len(self._outbox[dst])
            self._outbox[dst] = [
                e for e in self._outbox[dst] if e[0] > acked
            ]
            if len(self._outbox[dst]) != before:
                self._persist_outbox()

    # ------------------------------------------------------------------
    # Inbound side: accept, dedup, deliver, ack
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            data = await read_frame(reader)
            if data is None:
                return
            hello = json.loads(data.decode("utf-8")).get("hello")
            if hello is None:
                return
            key = (int(hello["pid"]), int(hello["boot"]))
            _dbg(f"p{self.pid} accepted connection from {key}")
            while self._running:
                data = await read_frame(reader)
                if data is None:
                    return
                obj = json.loads(data.decode("utf-8"))
                seq = obj["seq"]
                if seq <= self._seen.get(key, 0):
                    _dbg(f"p{self.pid} dedup drop {key} seq={seq} "
                         f"(seen={self._seen.get(key)})")
                if seq > self._seen.get(key, 0):
                    # Decode BEFORE advancing the dedup cursor: if decode
                    # raises, the connection drops with the cursor
                    # untouched and the sender's retransmit gets another
                    # chance instead of being dropped as a duplicate.
                    msg = codec.decode(obj["msg"])
                    if not isinstance(msg, NetworkMessage):
                        raise FramingError(
                            f"frame is not a NetworkMessage: {msg!r}"
                        )
                    self._seen[key] = seq
                    self._deliver(msg)
                await write_frame(
                    writer,
                    json.dumps({"ack": seq}).encode("utf-8"),
                )
        except (ConnectionError, OSError, FramingError):
            pass
        except asyncio.CancelledError:
            # Shutdown: finish quietly so loop teardown has nothing to
            # report about this handler.
            pass
        except Exception:   # noqa: BLE001 -- log it; the sender redials
            import traceback    # and retransmits anything unacked

            traceback.print_exc()
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    def _deliver(self, msg: NetworkMessage) -> None:
        if self._protocol is None:
            self._undelivered.append(msg)
            return
        try:
            self._protocol.on_network_message(msg)
            self.delivered_count += 1
        except Exception:   # noqa: BLE001 -- a poisoned message must not
            self.deliver_errors += 1    # kill the transport loops
            import traceback

            traceback.print_exc()
