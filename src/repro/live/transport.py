"""Reconnecting full-mesh TCP transport for the live cluster.

Channel model: the simulator's network is *reliable* -- a message sent is
eventually delivered, surviving receiver downtime (buffered) and sender
downtime (still in flight).  The live transport reproduces that with:

- one outbound TCP link per peer, redialled with exponential backoff
  whenever it drops (peer crashed, not yet started, transient error);
- per-link sequence numbers with cumulative acknowledgements; an entry
  leaves the sender's outbox only when the receiver has acknowledged
  *processing* it, so anything in doubt is retransmitted on reconnect;
- a **durable** outbox (persisted in the sender's
  :class:`~repro.live.storage.FileStableStorage`), so even a SIGKILLed
  sender retransmits its unacknowledged messages when it comes back --
  without this, messages "in flight" at a sender crash would be lost,
  which the paper's channel assumption forbids;
- receiver-side dedup keyed by ``(sender pid, sender boot)``: retransmits
  of already-processed entries are acknowledged but not re-delivered.
  After a *receiver* crash its dedup state is gone, so unacknowledged
  messages are delivered again -- exactly the redelivery a restarted
  simulated process gets -- and protocol-level dedup ids absorb the
  overlap, just as they absorb duplicates under the simulator's
  ``duplicate_rate``.

Wire format: the outbox stores :class:`NetworkMessage` objects, and each
connection encodes them at pump time with its own
:class:`~repro.live.wire.WireEncoder` -- that is what lets consecutive
messages on a link share an FTVC delta chain, with a reconnect naturally
restarting the chain at a full clock.  ``wire_format="json"`` keeps the
legacy tagged-JSON frames (for A/B benchmarking); the receive side always
accepts both, dispatching on the frame's first byte.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import random
import sys
import time
from typing import Any

from repro.live import codec, wire
from repro.live.framing import (
    OVERHEAD,
    BufferedFrameReader,
    FramingError,
    frame,
    write_frame,
)
from repro.runtime.message import NetworkMessage

#: One storage key holds the outbox AND the per-link sequence counters.
#: They must hit disk in the same write: persisted separately, a crash
#: between the two writes leaves an outbox entry on disk with a stale
#: counter, and the next incarnation re-assigns a live seq -- the
#: receiver's dedup cursor then silently swallows the second message,
#: losing it forever (a token lost this way strands every orphan).
_OUTBOX_KEY = "transport_outbox"

_BACKOFF_FLOOR = 0.05
_BACKOFF_CEIL = 2.0
_IDLE_POLL = 0.5
#: How often a sender re-checks a fault-blocked link for its heal time.
_BLOCKED_POLL = 0.05

#: Set REPRO_LIVE_DEBUG=1 to log connection and dedup decisions to stderr
#: (they end up in the node's log file).
_DEBUG = os.environ.get("REPRO_LIVE_DEBUG", "") not in ("", "0")


def _dbg(msg: str) -> None:
    if _DEBUG:
        print(f"[transport {time.time():.3f}] {msg}",
              file=sys.stderr, flush=True)


class MeshTransport:
    """Mesh endpoint for one live process."""

    def __init__(
        self,
        pid: int,
        n: int,
        ports: list[int],
        *,
        host: str = "127.0.0.1",
        boot: int = 0,
        storage: Any | None = None,
        wire_format: str = "binary",
        faults: Any | None = None,
    ) -> None:
        if wire_format not in ("binary", "json"):
            raise ValueError(f"unknown wire format {wire_format!r}")
        self.pid = pid
        self.n = n
        self.ports = ports
        self.host = host
        self.boot = boot
        self.storage = storage
        self.wire_format = wire_format
        # NodeFaults (or None): consulted on the dial and write paths so
        # injected partitions / gray links / corruption hit this link the
        # way a real network would.
        self.faults = faults
        self._protocol: Any | None = None
        self._undelivered: list[NetworkMessage] = []
        self._self_pending: list[NetworkMessage] = []
        self._outbox: dict[int, list[tuple[int, NetworkMessage]]] = {
            dst: [] for dst in range(n) if dst != pid
        }
        self._next_seq: dict[int, int] = {
            dst: 1 for dst in range(n) if dst != pid
        }
        self._wake: dict[int, asyncio.Event] = {}
        self._seen: dict[tuple[int, int], int] = {}
        self._max_written: dict[int, int] = {}
        self._server: asyncio.AbstractServer | None = None
        self._tasks: list[asyncio.Task] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._running = False
        self.sent_count = 0
        self.delivered_count = 0
        self.retransmit_count = 0
        self.deliver_errors = 0
        self.delivery_batches = 0     # grouped apply rounds (see _deliver_batch)
        self.delivery_batch_max = 0   # largest single batch applied
        self.bytes_sent = 0           # framed bytes written (data + acks)
        self.bytes_received = 0       # framed bytes read (data + acks)
        self.data_frames_sent = 0
        self.dial_attempts = 0        # open_connection calls (per process)
        if storage is not None:
            saved = storage.get(_OUTBOX_KEY, {})
            self._outbox.update(
                {
                    int(dst): [(seq, msg) for seq, msg in entries]
                    for dst, entries in saved.get("entries", {}).items()
                }
            )
            self._next_seq.update(
                {
                    int(dst): seq
                    for dst, seq in saved.get("next_seq", {}).items()
                }
            )
            # Defensive heal: whatever the disk says, never hand out a
            # seq at or below one already occupied in the outbox.
            for dst, entries in self._outbox.items():
                if entries:
                    floor = max(seq for seq, _ in entries) + 1
                    if self._next_seq[dst] < floor:
                        self._next_seq[dst] = floor
        # Register the outbox as a lazy *provider*: the storage snapshots
        # it via this callback when it actually writes, so send() marks a
        # dirty bit in O(1) instead of serialising the whole outbox into
        # a put_lazy value on every message.
        self._has_provider = storage is not None and hasattr(
            storage, "register_lazy_provider"
        )
        if self._has_provider:
            storage.register_lazy_provider(_OUTBOX_KEY, self._outbox_image)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._running = True
        for dst in self._outbox:
            self._wake[dst] = asyncio.Event()
            if self._outbox[dst]:
                # Reloaded entries from a previous incarnation: the peer
                # loop retransmits them as soon as it connects.
                self._wake[dst].set()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.ports[self.pid]
        )
        for dst in self._outbox:
            self._tasks.append(asyncio.create_task(self._peer_loop(dst)))

    async def stop(self) -> None:
        self._running = False
        for task in list(self._tasks) + list(self._conn_tasks):
            task.cancel()
        for task in list(self._tasks) + list(self._conn_tasks):
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._tasks.clear()
        self._conn_tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def attach(self, protocol: Any) -> None:
        if self._protocol is not None:
            raise RuntimeError(
                f"transport {self.pid} already has a protocol"
            )
        self._protocol = protocol
        if not self._undelivered:
            return
        # Defer the drain one loop iteration so the caller can finish
        # constructing/recovering the protocol (on_start / on_restart)
        # before buffered messages hit it.  Outside a running loop --
        # synchronous tests -- deliver inline.
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            self._drain_undelivered()
            return
        loop.call_soon(self._drain_undelivered)

    def _drain_undelivered(self) -> None:
        pending, self._undelivered = self._undelivered, []
        self._deliver_batch(pending)

    @property
    def unacked(self) -> int:
        """Outbox entries not yet acknowledged by their receivers."""
        return sum(len(entries) for entries in self._outbox.values())

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: int, msg: NetworkMessage) -> None:
        """Queue ``msg`` for ``dst``; delivery is asynchronous."""
        if dst == self.pid:
            # Self-sends from one synchronous burst coalesce into a
            # single deferred drain: one event-loop callback applies the
            # whole FIFO batch instead of one callback per message.
            self._self_pending.append(msg)
            if len(self._self_pending) == 1:
                asyncio.get_running_loop().call_soon(self._drain_self_sends)
            return
        seq = self._next_seq[dst]
        self._next_seq[dst] = seq + 1
        self._outbox[dst].append((seq, msg))
        self._persist_outbox()
        self.sent_count += 1
        if dst in self._wake:
            self._wake[dst].set()

    def _outbox_image(self) -> dict[str, Any]:
        """Snapshot for stable storage; called by the storage at persist
        time (lazy provider) or built eagerly for plain ``put_lazy``."""
        return {
            "entries": {
                dst: list(entries)
                for dst, entries in self._outbox.items()
            },
            "next_seq": dict(self._next_seq),
        }

    def _persist_outbox(self) -> None:
        # Lazy (group-commit) writes: the outbox rides to disk with the
        # next storage barrier or flush window.  Sound because a message
        # whose sending state was never made durable is condemned by the
        # sender's restart token anyway -- receivers discard it as
        # obsolete, so losing its outbox entry equals never sending it --
        # while any barrier that makes the sending state durable (log
        # flush, checkpoint, token) persists the whole image, outbox
        # included.
        if self.storage is None:
            return
        if self._has_provider:
            # O(1): the storage snapshots via _outbox_image when (and only
            # when) it writes, so a burst of sends inside one flush window
            # costs one snapshot, not one per message.
            self.storage.mark_lazy_dirty()
            return
        self.storage.put_lazy(_OUTBOX_KEY, self._outbox_image())

    def _encode_data(
        self, encoder: wire.WireEncoder | None, seq: int, msg: NetworkMessage
    ) -> bytes:
        if encoder is not None:
            return encoder.data_frame(seq, msg)
        return json.dumps(
            {"seq": seq, "msg": codec.encode(msg)},
            separators=(",", ":"),
        ).encode("utf-8")

    # ------------------------------------------------------------------
    # Outbound side: dial, retransmit, consume acks
    # ------------------------------------------------------------------
    async def _peer_loop(self, dst: int) -> None:
        backoff = _BACKOFF_FLOOR
        while self._running:
            if self.faults is not None and self.faults.send_blocked(dst):
                # Injected black-hole: don't even dial.  Poll the local
                # schedule for the heal time; on heal, redial and let the
                # outbox retransmit everything unacknowledged.
                await asyncio.sleep(_BLOCKED_POLL)
                continue
            try:
                self.dial_attempts += 1
                reader, writer = await asyncio.open_connection(
                    self.host, self.ports[dst]
                )
            except OSError:
                # Capped exponential backoff with full jitter: the cadence
                # stays bounded against a long-dead peer, and jitter keeps
                # a whole cluster from redialling a restarted node in
                # lockstep.
                await asyncio.sleep(random.uniform(backoff / 2, backoff))
                backoff = min(backoff * 2, _BACKOFF_CEIL)
                continue
            backoff = _BACKOFF_FLOOR
            _dbg(f"p{self.pid}(boot {self.boot}) connected -> p{dst}")
            ack_task = asyncio.create_task(self._ack_loop(dst, reader))
            try:
                if self.wire_format == "binary":
                    hello = wire.hello_frame(self.pid, self.boot)
                else:
                    hello = json.dumps(
                        {"hello": {"pid": self.pid, "boot": self.boot}}
                    ).encode("utf-8")
                await write_frame(writer, hello)
                self.bytes_sent += len(hello) + OVERHEAD
                await self._pump(dst, writer, ack_task)
            except (ConnectionError, OSError, FramingError):
                pass
            except asyncio.CancelledError:
                raise
            except Exception:   # noqa: BLE001 -- an unexpected error must
                import traceback    # surface in the log, then the link

                traceback.print_exc()   # redials like any other drop
            finally:
                ack_task.cancel()
                with contextlib.suppress(
                    asyncio.CancelledError, ConnectionError, OSError
                ):
                    await ack_task
                writer.close()
                with contextlib.suppress(ConnectionError, OSError):
                    await writer.wait_closed()

    async def _pump(
        self, dst: int, writer: asyncio.StreamWriter, ack_task: asyncio.Task
    ) -> None:
        """Write outbox entries in order until the connection dies.

        The encoder lives exactly as long as the connection: its delta
        chain and interning table match what the peer's decoder has seen,
        and a reconnect starts over with a full clock.  Ready entries are
        written as one batch with a single drain, so a burst of sends
        costs one syscall round, not one per message.
        """
        encoder = (
            wire.WireEncoder() if self.wire_format == "binary" else None
        )
        sent_marker = 0   # highest seq written on *this* connection
        while self._running:
            if ack_task.done():
                return   # read side saw the connection drop
            if self.faults is not None and self.faults.send_blocked(dst):
                # A partition window opened while connected: drop the
                # link so the peer loop parks until the heal, exactly as
                # if the network path had gone dark mid-connection.
                return
            batch = [e for e in self._outbox[dst] if e[0] > sent_marker]
            if not batch:
                self._wake[dst].clear()
                if any(e[0] > sent_marker for e in self._outbox[dst]):
                    continue   # raced with send()
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._wake[dst].wait(), timeout=_IDLE_POLL
                    )
                continue
            batch_bytes = 0
            for seq, msg in batch:
                payload = self._encode_data(encoder, seq, msg)
                framed = frame(payload)
                if self.faults is not None:
                    framed = self.faults.corrupt_frame(dst, framed)
                writer.write(framed)
                batch_bytes += len(framed)
                self.data_frames_sent += 1
                if seq <= self._max_written.get(dst, 0):
                    self.retransmit_count += 1
                else:
                    self._max_written[dst] = seq
                sent_marker = seq
            self.bytes_sent += batch_bytes
            if self.faults is not None:
                # Gray link: hold the batch in the kernel buffer for the
                # injected delay/jitter/bandwidth penalty before draining.
                penalty = self.faults.gray_penalty(dst, batch_bytes)
                if penalty > 0.0:
                    await asyncio.sleep(penalty)
            await writer.drain()

    async def _ack_loop(self, dst: int, reader: asyncio.StreamReader) -> None:
        # Acks are cumulative per link, so a batch of ack frames collapses
        # to its maximum: one outbox prune and one persist per read batch.
        buffered = BufferedFrameReader(reader)
        while self._running:
            batch = await buffered.read_batch()
            if batch is None:
                return
            acked = -1
            for data in batch:
                self.bytes_received += len(data) + OVERHEAD
                if wire.is_binary(data):
                    if wire.frame_type(data) != wire.FRAME_ACK:
                        continue
                    acked = max(acked, wire.parse_ack(data))
                else:
                    value = json.loads(data.decode("utf-8")).get("ack")
                    if value is not None:
                        acked = max(acked, value)
            if acked < 0:
                continue
            before = len(self._outbox[dst])
            self._outbox[dst] = [
                e for e in self._outbox[dst] if e[0] > acked
            ]
            if len(self._outbox[dst]) != before:
                self._persist_outbox()

    # ------------------------------------------------------------------
    # Inbound side: accept, dedup, deliver, ack
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            buffered = BufferedFrameReader(reader)
            key: tuple[int, int] | None = None
            decoder = wire.WireDecoder()
            while self._running:
                batch = await buffered.read_batch()
                if batch is None:
                    return
                # Pass 1: decode every frame in the read batch --
                # duplicates included -- BEFORE touching the dedup
                # cursor.  The decoder's delta chain must advance in
                # lockstep with the sender's encoder, and a decode error
                # anywhere in the batch must drop the connection with the
                # cursor untouched so the retransmits get another chance.
                # (Advancing the cursor first would let a mid-batch
                # decode error permanently swallow the undelivered tail.)
                decoded: list[tuple[int, NetworkMessage, bool]] = []
                for data in batch:
                    self.bytes_received += len(data) + OVERHEAD
                    if key is None:
                        # First frame on the link is the sender's hello.
                        if wire.is_binary(data):
                            if wire.frame_type(data) != wire.FRAME_HELLO:
                                return
                            key = wire.parse_hello(data)
                        else:
                            hello = json.loads(
                                data.decode("utf-8")
                            ).get("hello")
                            if hello is None:
                                return
                            key = (int(hello["pid"]), int(hello["boot"]))
                        _dbg(f"p{self.pid} accepted connection from {key}")
                        continue
                    binary = wire.is_binary(data)
                    if binary:
                        if wire.frame_type(data) != wire.FRAME_DATA:
                            raise FramingError(
                                f"unexpected binary frame type on data link"
                            )
                        seq, msg = decoder.decode_data(data)
                    else:
                        obj = json.loads(data.decode("utf-8"))
                        seq = obj["seq"]
                        msg = codec.decode(obj["msg"])
                    if not isinstance(msg, NetworkMessage):
                        raise FramingError(
                            f"frame is not a NetworkMessage: {msg!r}"
                        )
                    decoded.append((seq, msg, binary))
                if not decoded:
                    continue
                # Pass 2: advance the dedup cursor and collect the fresh
                # deliveries, then apply the whole batch in one tick
                # (FIFO, no per-message event-loop round trip).
                ready: list[NetworkMessage] = []
                for seq, msg, _ in decoded:
                    if seq > self._seen.get(key, 0):
                        self._seen[key] = seq
                        ready.append(msg)
                    else:
                        _dbg(f"p{self.pid} dedup drop {key} seq={seq} "
                             f"(seen={self._seen.get(key)})")
                self._deliver_batch(ready)
                # Per-link seqs are strictly increasing on a connection,
                # and the sender prunes cumulatively -- so a batch of
                # data frames needs exactly one ack (the last seq), one
                # write and one drain, not one round per frame.
                ack_seq, _, ack_binary = decoded[-1]
                ack = (
                    wire.ack_frame(ack_seq)
                    if ack_binary
                    else json.dumps({"ack": ack_seq}).encode("utf-8")
                )
                await write_frame(writer, ack)
                self.bytes_sent += len(ack) + OVERHEAD
        except (ConnectionError, OSError, FramingError):
            pass
        except asyncio.CancelledError:
            # Shutdown: finish quietly so loop teardown has nothing to
            # report about this handler.
            pass
        except Exception:   # noqa: BLE001 -- log it; the sender redials
            import traceback    # and retransmits anything unacked

            traceback.print_exc()
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    def _drain_self_sends(self) -> None:
        pending, self._self_pending = self._self_pending, []
        self._deliver_batch(pending)

    def _deliver_batch(self, msgs: list[NetworkMessage]) -> None:
        """Apply a batch of ready deliveries in FIFO order, one tick.

        This is the delivery-batching hot path: all app messages that
        arrived in one read batch (or one self-send burst) hit the
        protocol back to back inside a single event-loop callback,
        instead of costing a loop iteration each.
        """
        if not msgs:
            return
        self.delivery_batches += 1
        if len(msgs) > self.delivery_batch_max:
            self.delivery_batch_max = len(msgs)
        for msg in msgs:
            self._deliver(msg)

    def _deliver(self, msg: NetworkMessage) -> None:
        if self._protocol is None:
            self._undelivered.append(msg)
            return
        try:
            self._protocol.on_network_message(msg)
            self.delivered_count += 1
        except Exception:   # noqa: BLE001 -- a poisoned message must not
            self.deliver_errors += 1    # kill the transport loops
            import traceback

            traceback.print_exc()
