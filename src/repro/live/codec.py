"""Tagged-JSON codec for the live wire format.

Everything a protocol puts on the wire (or in a trace field) is built from
JSON scalars, lists, dicts, tuples, sets, frozen dataclasses and the
:class:`~repro.core.ftvc.FaultTolerantVectorClock`.  The codec encodes
those losslessly into plain JSON with ``"__tag__"``-style markers and
decodes them back into the original types.

Security note: decoding instantiates classes by name, so the decoder only
accepts dataclasses defined in modules under the ``repro.`` package.  A
frame naming anything else is rejected -- the live cluster should never
execute a constructor picked by the network.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
from typing import Any

from repro.core.ftvc import FaultTolerantVectorClock
from repro.runtime.message import NetworkMessage

#: Module prefix decodable dataclasses must live under.
TRUSTED_PREFIX = "repro."


class CodecError(ValueError):
    """Raised for unencodable values and untrusted or malformed frames."""


def canonical_key(value: Any):
    """A total-order sort key over every codec-encodable value.

    Used to order set elements deterministically on the wire.  Each value
    maps to a ``(type rank, ...)`` tuple built once per element -- unlike
    re-serialising elements to JSON inside the sort comparator, this is
    O(size) per element, and it also covers the binary codec's types
    without a JSON detour.  Booleans rank separately from numbers
    (``True == 1`` would otherwise collide), ints and floats share a rank
    so mixed numeric sets still compare numerically.
    """
    if value is None:
        return (0,)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, FaultTolerantVectorClock):
        return (4, value.pairs())
    if isinstance(value, (list, tuple)):
        return (5, tuple(canonical_key(item) for item in value))
    if isinstance(value, (set, frozenset)):
        return (6, tuple(sorted(canonical_key(item) for item in value)))
    if isinstance(value, dict):
        return (
            7,
            tuple(
                sorted(
                    (canonical_key(k), canonical_key(v))
                    for k, v in value.items()
                )
            ),
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return (
            8,
            f"{cls.__module__}:{cls.__qualname__}",
            tuple(
                canonical_key(getattr(value, f.name))
                for f in dataclasses.fields(value)
            ),
        )
    raise CodecError(f"cannot order {type(value).__name__}: {value!r}")


def resolve_dataclass(path: str) -> type:
    """Resolve a ``module:QualName`` wire path to a trusted dataclass.

    Shared by the JSON and binary codecs: both only instantiate
    dataclasses defined directly in modules under ``repro.``.
    """
    module_name, _, qualname = path.partition(":")
    if not module_name.startswith(TRUSTED_PREFIX) or "." in qualname:
        raise CodecError(f"untrusted dataclass on the wire: {path!r}")
    module = importlib.import_module(module_name)
    cls = getattr(module, qualname, None)
    if cls is None or not dataclasses.is_dataclass(cls):
        raise CodecError(f"{path!r} is not a known dataclass")
    return cls


def encode(value: Any) -> Any:
    """Lower ``value`` to a JSON-representable structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, FaultTolerantVectorClock):
        return {"__ftvc__": [list(pair) for pair in value.pairs()]}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, tuple):
        return {"__tuple__": [encode(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        tag = "__frozenset__" if isinstance(value, frozenset) else "__set__"
        # Sort before encoding for a deterministic wire image.
        items = [
            encode(item) for item in sorted(value, key=canonical_key)
        ]
        return {tag: items}
    if isinstance(value, dict):
        return {
            "__dict__": [[encode(k), encode(v)] for k, v in value.items()]
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        if not cls.__module__.startswith(TRUSTED_PREFIX):
            raise CodecError(
                f"refusing to encode non-repro dataclass {cls.__module__}."
                f"{cls.__qualname__}"
            )
        return {
            "__dc__": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                f.name: encode(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    raise CodecError(f"cannot encode {type(value).__name__}: {value!r}")


def decode(obj: Any) -> Any:
    """Invert :func:`encode`."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [decode(item) for item in obj]
    if isinstance(obj, dict):
        if "__ftvc__" in obj:
            return FaultTolerantVectorClock.of(
                tuple(pair) for pair in obj["__ftvc__"]
            )
        if "__tuple__" in obj:
            return tuple(decode(item) for item in obj["__tuple__"])
        if "__set__" in obj:
            return {decode(item) for item in obj["__set__"]}
        if "__frozenset__" in obj:
            return frozenset(decode(item) for item in obj["__frozenset__"])
        if "__dict__" in obj:
            return {decode(k): decode(v) for k, v in obj["__dict__"]}
        if "__dc__" in obj:
            return _decode_dataclass(obj)
        raise CodecError(f"unrecognised wire object: {sorted(obj)!r}")
    raise CodecError(f"cannot decode {type(obj).__name__}")


def _decode_dataclass(obj: dict) -> Any:
    cls = resolve_dataclass(obj["__dc__"])
    fields = {k: decode(v) for k, v in obj["fields"].items()}
    return cls(**fields)


# ----------------------------------------------------------------------
# Message envelopes
# ----------------------------------------------------------------------
def dump_message(msg: NetworkMessage) -> bytes:
    """Serialize one :class:`NetworkMessage` for the wire."""
    return json.dumps(encode(msg), separators=(",", ":")).encode("utf-8")


def load_message(data: bytes) -> NetworkMessage:
    msg = decode(json.loads(data.decode("utf-8")))
    if not isinstance(msg, NetworkMessage):
        raise CodecError(f"frame does not hold a NetworkMessage: {msg!r}")
    return msg
