"""Wire & storage fast-path benchmark (``BENCH_wire.json``).

Two sections, one per layer the fast path touches:

**piggyback** (deterministic, simulator) -- replays the adversarial
``stress-mix`` scenario with the obs layer on and reads the per-send
clock cost counters: what every app message paid for its FTVC under the
legacy full-clock JSON encoding versus the per-link delta encoding (full
clock on the first send of a link and after every crash, diffs after).
Same schedule, same messages, so the ratio is exact.

**live** -- two real SIGKILL-grade cluster runs per scenario over the
same workload: *before* (legacy JSON frames, one fsync per outbox
mutation) and *after* (binary delta frames, group-commit window).
Reported per variant: deliveries/sec, data frames/sec, wire bytes per
delivery, and fsyncs per delivery, plus the conformance verdict -- the
speedup only counts if the oracles still pass.

Wall-clock numbers are machine-relative; the piggyback section is not.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.live.supervisor import (
    LiveClusterSpec,
    LiveCrashPlan,
    LiveRunResult,
    run_cluster,
)
from repro.live.verify import check_live_run


def measure_piggyback(seed: int | None = None) -> dict[str, Any]:
    """Full-clock JSON vs per-link delta clock cost on ``stress-mix``."""
    from repro.harness.runner import run_experiment
    from repro.obs.scenarios import build_scenario
    from repro.obs.tracer import Tracer

    spec = build_scenario("stress-mix", seed)
    tracer = Tracer()
    spec.tracer = tracer
    run_experiment(spec)

    clocks = tracer.counter_value("dg.wire_clocks_sent")
    full_json = tracer.counter_value("dg.wire_bytes_full_json")
    delta = tracer.counter_value("dg.wire_bytes_delta")
    fallbacks = tracer.counter_value("dg.wire_full_fallbacks")
    return {
        "scenario": "stress-mix",
        "clocks_sent": int(clocks),
        "full_clock_fallbacks": int(fallbacks),
        "full_json_bytes_total": int(full_json),
        "delta_bytes_total": int(delta),
        "full_json_bytes_per_msg": (
            round(full_json / clocks, 2) if clocks else None
        ),
        "delta_bytes_per_msg": (
            round(delta / clocks, 2) if clocks else None
        ),
        "reduction_factor": (
            round(full_json / delta, 2) if delta else None
        ),
    }


def _live_variant_report(result: LiveRunResult) -> dict[str, Any]:
    spec = result.spec
    verdict = check_live_run(result.trace, n=spec.n, jobs=spec.jobs)
    delivered = result.total_delivered
    wall = result.wall_seconds
    frames = sum(
        d["transport"].get("data_frames_sent", 0)
        for d in result.done.values()
    )
    wire_bytes = sum(
        d["transport"].get("bytes_sent", 0) for d in result.done.values()
    )
    fsyncs = sum(d.get("storage_persists", 0) for d in result.done.values())
    return {
        "wire_format": spec.wire_format,
        "storage_flush_window": spec.storage_flush_window,
        "verdict": verdict.summary(),
        "ok": verdict.ok,
        "wall_seconds": round(wall, 3),
        "app_deliveries": delivered,
        "deliveries_per_second": (
            round(delivered / wall, 2) if wall > 0 else None
        ),
        "data_frames_sent": frames,
        "frames_per_second": round(frames / wall, 2) if wall > 0 else None,
        "wire_bytes_sent": wire_bytes,
        "wire_bytes_per_delivery": (
            round(wire_bytes / delivered, 1) if delivered else None
        ),
        "fsyncs": fsyncs,
        "fsyncs_per_delivery": (
            round(fsyncs / delivered, 2) if delivered else None
        ),
    }


def _run_pair(
    workdir: str,
    name: str,
    *,
    n: int,
    jobs: int,
    run_seconds: float,
    crashes: list[LiveCrashPlan],
) -> dict[str, Any]:
    variants: dict[str, Any] = {}
    for variant, wire_format, window in (
        ("before", "json", 0.0),
        ("after", "binary", 0.05),
    ):
        spec = LiveClusterSpec(
            n=n,
            jobs=jobs,
            run_seconds=run_seconds,
            crashes=list(crashes),
            wire_format=wire_format,
            storage_flush_window=window,
        )
        result = run_cluster(
            spec, os.path.join(workdir, f"{name}_{variant}")
        )
        variants[variant] = _live_variant_report(result)
    before, after = variants["before"], variants["after"]
    if before["wire_bytes_sent"] and after["wire_bytes_sent"]:
        variants["wire_bytes_reduction_factor"] = round(
            before["wire_bytes_sent"] / after["wire_bytes_sent"], 2
        )
    if before["fsyncs"] and after["fsyncs"]:
        variants["fsync_reduction_factor"] = round(
            before["fsyncs"] / after["fsyncs"], 2
        )
    return variants


def run_wire_bench(
    workdir: str,
    *,
    n: int = 4,
    jobs: int = 64,
    run_seconds: float = 6.0,
    crash_at: float = 0.25,
    downtime: float = 1.0,
    seed: int | None = None,
    skip_live: bool = False,
) -> dict[str, Any]:
    """Run both sections; returns the ``BENCH_wire.json`` payload."""
    payload: dict[str, Any] = {
        "benchmark": "wire-storage-fast-path",
        "protocol": "damani-garg",
        "n": n,
        "jobs": jobs,
        "run_seconds": run_seconds,
        "piggyback": measure_piggyback(seed),
    }
    if not skip_live:
        payload["live"] = {
            "failure_free": _run_pair(
                workdir,
                "failure_free",
                n=n,
                jobs=jobs,
                run_seconds=run_seconds,
                crashes=[],
            ),
            "one_crash": _run_pair(
                workdir,
                "one_crash",
                n=n,
                jobs=jobs,
                run_seconds=run_seconds,
                crashes=[
                    LiveCrashPlan(pid=1, at=crash_at, downtime=downtime)
                ],
            ),
        }
    return payload


def write_wire_bench(path: str, workdir: str, **kwargs: Any) -> dict[str, Any]:
    payload = run_wire_bench(workdir, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
