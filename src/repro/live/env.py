"""The live (asyncio) implementation of :class:`~repro.runtime.env.RuntimeEnv`.

One :class:`LiveEnv` backs one OS process in a live cluster.  The clock is
monotonic time anchored once to the cluster-wide epoch (the wall clock is
consulted exactly one time, at anchor computation; every subsequent ``now``
read is ``time.monotonic()`` against that anchor, so NTP slews and
wall-clock steps cannot warp env-time or produce negative latencies),
timers are event-loop timers, sends go through the reconnecting mesh
transport, and the trace is an append-only JSONL file the supervisor later
merges across processes.

``alive`` is always true here: a live process that crashed is not running
this code.  Downtime is real -- the supervisor SIGKILLs the process and
starts a fresh one, which resumes from :class:`FileStableStorage`.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Callable, IO

from repro.live import codec
from repro.runtime.env import RuntimeEnv, TimerHandle
from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind, SimTrace


class LiveTrace:
    """JSONL ground-truth trace writer with the :class:`SimTrace` record API.

    Each line is ``{"t": float, "kind": str, "pid": int, "fields": {...}}``
    with fields passed through the wire codec (clocks and dataclasses
    survive the round trip).

    Writes are **batched**: records accumulate in a user-space buffer and
    reach the file in groups of at most ``buffer_records`` lines or after
    ``buffer_seconds``, whichever comes first (one ``write`` + ``flush``
    per group instead of one per record -- the per-record flush used to be
    ~9 writes per pipeline job, the hottest syscall on the delivery path).

    The bounded-loss rule that keeps the grading oracle's ground truth
    intact under SIGKILL:

    - a SIGKILL loses **at most the unflushed buffer** -- and the node
      wires :meth:`flush` as the storage's ``pre_persist_hook``, so the
      buffer is forced out *before every stable-storage sync barrier*.
      Any trace record describing an event whose effects became durable
      (an OUTPUT whose log entry was flushed and will therefore be
      replayed with emission suppressed, a TOKEN_SEND whose token was
      logged) is on disk before the barrier that made the effect durable;
    - records that die in the buffer describe only volatile state the
      protocol itself lost in the same crash -- state it regenerates from
      scratch (and re-records) after the restart, exactly as if the event
      had never happened;
    - :meth:`close` flushes, so a clean shutdown loses nothing.

    ``buffer_records=1`` restores the old flush-per-record behaviour.
    Without a running event loop (synchronous tests) there is nothing to
    fire the timer, so records flush immediately -- same observable
    behaviour as before.
    """

    def __init__(
        self,
        fh: IO[str],
        *,
        buffer_records: int = 64,
        buffer_seconds: float = 0.05,
    ) -> None:
        if buffer_records < 1:
            raise ValueError(
                f"buffer_records must be >= 1, got {buffer_records}"
            )
        self._fh = fh
        self.buffer_records = buffer_records
        self.buffer_seconds = buffer_seconds
        self._buffer: list[str] = []
        self._flush_handle: asyncio.TimerHandle | None = None
        self.records_written = 0
        self.flushes = 0                    # grouped writes that hit the file
        self.records_buffered_max = 0       # high-water mark of the buffer

    def record(
        self, time_: float, kind: EventKind, pid: int, **fields: Any
    ) -> None:
        line = {
            "t": time_,
            "kind": kind.value,
            "pid": pid,
            "fields": {k: codec.encode(v) for k, v in fields.items()},
        }
        self._buffer.append(json.dumps(line, separators=(",", ":")) + "\n")
        self.records_written += 1
        if len(self._buffer) > self.records_buffered_max:
            self.records_buffered_max = len(self._buffer)
        if len(self._buffer) >= self.buffer_records:
            self.flush()
            return
        if self._flush_handle is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                # No event loop to fire the timer: flush now so records
                # can never sit in the buffer indefinitely.
                self.flush()
                return
            self._flush_handle = loop.call_later(
                self.buffer_seconds, self._timer_fire
            )

    def _timer_fire(self) -> None:
        self._flush_handle = None
        self.flush()

    def flush(self) -> None:
        """Write the buffered records out now (one write, one flush).

        Safe to call with an empty buffer (no-op, not counted).  This is
        the method the live node installs as the stable storage's
        ``pre_persist_hook``: ordering the trace write *before* the
        storage barrier is what bounds SIGKILL loss to volatile state.
        """
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._buffer:
            return
        pending, self._buffer = self._buffer, []
        self._fh.write("".join(pending))
        self._fh.flush()
        self.flushes += 1

    def close(self) -> None:
        self.flush()
        self._fh.close()


def merge_traces(paths: list[str]) -> SimTrace:
    """Merge per-process JSONL trace files into one :class:`SimTrace`.

    Events are ordered by timestamp, with the per-file order breaking ties
    (timestamps come from one wall clock per machine, so cross-process
    ties are rare and their order is not load-bearing for the oracles).
    """
    rows: list[tuple[float, int, int, dict]] = []
    for file_index, path in enumerate(paths):
        with open(path, "r", encoding="utf-8") as fh:
            for line_index, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except ValueError:
                    # A SIGKILLed incarnation can leave a truncated final
                    # line; the event was never durably observed, so
                    # dropping it loses nothing the oracles rely on.
                    continue
                rows.append((row["t"], file_index, line_index, row))
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    trace = SimTrace()
    for _, _, _, row in rows:
        trace.record(
            row["t"],
            EventKind(row["kind"]),
            row["pid"],
            **{k: codec.decode(v) for k, v in row["fields"].items()},
        )
    return trace


class _LiveTimerHandle:
    """Event-loop timer with the :class:`TimerHandle` surface."""

    __slots__ = ("_handle", "_time", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle, time_: float) -> None:
        self._handle = handle
        self._time = time_
        self._cancelled = False

    @property
    def time(self) -> float:
        return self._time

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()


class LiveEnv(RuntimeEnv):
    """One live OS process's runtime environment."""

    def __init__(
        self,
        *,
        pid: int,
        n: int,
        storage: Any,
        transport: Any,
        epoch: float,
        crash_count: int = 0,
        trace: LiveTrace | None = None,
        tracer: Any | None = None,
        loop: asyncio.AbstractEventLoop | None = None,
        mono_anchor: float | None = None,
    ) -> None:
        self.pid = pid
        self.n = n
        self.storage = storage
        self.transport = transport
        self.epoch = epoch
        self.trace = trace
        self._tracer = tracer
        self._crash_count = crash_count
        self._loop = loop
        self._msg_counter = 0
        # ``mono_anchor`` is the time.monotonic() reading that corresponds
        # to env-time zero.  Callers that observed the epoch at a known
        # instant (repro.live.node) pass their own anchor; otherwise it is
        # derived here with the construction-time wall clock -- the single
        # wall-clock read this object ever makes.
        if mono_anchor is None:
            mono_anchor = time.monotonic() - (time.time() - epoch)
        self._mono_anchor = mono_anchor

    # ------------------------------------------------------------------
    # Clock, liveness, observability
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return time.monotonic() - self._mono_anchor

    @property
    def alive(self) -> bool:
        return True

    @property
    def crash_count(self) -> int:
        return self._crash_count

    @property
    def tracer(self) -> Any | None:
        return self._tracer

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def _next_msg_id(self) -> int:
        # Unique across processes and incarnations: pid and boot number in
        # the high bits, a local counter below.
        self._msg_counter += 1
        return (
            (self.pid << 48)
            | ((self._crash_count & 0xFFFF) << 32)
            | self._msg_counter
        )

    def send(
        self,
        dst: int,
        payload: Any,
        *,
        kind: str = "app",
        latency: float | None = None,
    ) -> NetworkMessage:
        # ``latency`` is a simulation-only knob; real links have real
        # latency.
        msg = NetworkMessage(
            msg_id=self._next_msg_id(),
            src=self.pid,
            dst=dst,
            kind=kind,
            payload=payload,
            send_time=self.now,
        )
        self.transport.send(dst, msg)
        return msg

    def broadcast(
        self,
        payload: Any,
        *,
        kind: str = "token",
        include_self: bool = False,
    ) -> list[NetworkMessage]:
        sent = []
        for dst in range(self.n):
            if dst == self.pid and not include_self:
                continue
            sent.append(self.send(dst, payload, kind=kind))
        return sent

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> TimerHandle:
        # ``priority`` orders same-instant events in the simulator; real
        # time has no simultaneous instants, so it is ignored here.
        delay = max(0.0, delay)
        loop = (
            self._loop if self._loop is not None
            else asyncio.get_running_loop()
        )
        handle = loop.call_later(delay, callback)
        return _LiveTimerHandle(handle, self.now + delay)

    # suspend_timer / resume_timer: the RuntimeEnv defaults (cancel, then
    # re-arm on the chain's original phase) are exactly right for live
    # timers -- there is no deterministic event order to preserve.

    # ------------------------------------------------------------------
    # Protocol attachment
    # ------------------------------------------------------------------
    def attach(self, protocol: Any) -> None:
        self.transport.attach(protocol)
