"""Open-loop load generation for the live cluster (``BENCH_load.json``).

The classic pipeline benchmark is *closed-loop*: stage 0 bootstraps all
jobs in one burst, so its "throughput" is the workload's send cadence,
not a system limit, and its latency distribution is one burst's drain
time.  This module replaces the burst with an **open-loop source**: job
``j`` has a deterministic intended injection time ``start_at + j/rate``,
and the source injects every job whose intended time has passed whenever
it runs.  Falling behind does not slow the schedule down -- the next tick
injects the backlog -- so measured latency includes queueing delay the
way a real client would see it (no coordinated omission).

Latency is graded from the merged trace alone: job ``j`` completes at its
OUTPUT event's timestamp, and its latency is that timestamp minus the
*intended* injection time -- which the grader recomputes from ``(rate,
start_at)``, so the measurement cannot be gamed by a late injector.

The sweep driver runs one live cluster per offered rate and reports
honest p50/p99 latency-vs-offered-load curves plus active-window
throughput, with every scenario graded by the same closed-form oracle as
the classic benchmark (:func:`~repro.live.verify.check_live_run` -- the
injected payloads are byte-identical to bootstrap's, so the reference
values are unchanged).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Sequence

from repro.analysis.metrics import percentile
from repro.apps.applications import Job, PipelineApp, mix64
from repro.live.bench import active_window
from repro.live.supervisor import LiveClusterSpec, LiveRunResult, run_cluster
from repro.live.verify import check_live_run
from repro.runtime.trace import EventKind


class LoadPipelineApp(PipelineApp):
    """The pipeline stages without the bootstrap burst.

    Stage behaviour (and therefore the closed-form reference values) is
    identical to :class:`PipelineApp`; jobs arrive from an
    :class:`OpenLoopSource` instead of one bootstrap-time burst.
    """

    def bootstrap(self, pid: int, n: int, ctx: Any) -> None:
        return


class OpenLoopSource:
    """Inject pipeline jobs at a fixed offered rate, open-loop.

    Engine-agnostic: drives any protocol through its ``env`` timer API
    (:meth:`~repro.runtime.env.RuntimeEnv.schedule_after`), so the same
    source runs on the deterministic simulator and on a live node.  Only
    the process that never receives app messages (stage 0) may host the
    source -- see :meth:`DamaniGargProcess.inject_app_send`.
    """

    def __init__(
        self,
        protocol: Any,
        *,
        rate: float,
        jobs: int,
        start_at: float = 0.25,
        dst: int = 1,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"offered rate must be positive, got {rate}")
        if jobs < 0:
            raise ValueError(f"job count must be >= 0, got {jobs}")
        self.protocol = protocol
        self.rate = float(rate)
        self.jobs = int(jobs)
        self.start_at = float(start_at)
        self.dst = dst
        self.injected = 0
        self._handle: Any | None = None
        self._stopped = False

    def intended_time(self, job: int) -> float:
        """The deterministic open-loop schedule: when job ``job`` is
        *supposed* to enter the system, in env-time seconds."""
        return self.start_at + job / self.rate

    def start(self) -> None:
        env = self.protocol.env
        self._schedule(max(0.0, self.start_at - env.now))

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def done(self) -> bool:
        return self.injected >= self.jobs

    def _schedule(self, delay: float) -> None:
        self._handle = self.protocol.env.schedule_after(
            delay, self._tick, label="load-source"
        )

    def _tick(self) -> None:
        if self._stopped:
            return
        env = self.protocol.env
        # Inject the whole backlog: every job whose intended time has
        # passed.  A tick that fires late (busy event loop) catches up in
        # a burst instead of stretching the schedule -- that is what
        # makes the load open-loop.
        now = env.now
        while self.injected < self.jobs and self.intended_time(
            self.injected
        ) <= now:
            job = self.injected
            self.injected += 1
            self.protocol.inject_app_send(
                self.dst, Job(job_id=job, stage=1, value=mix64(job, 0))
            )
        if self.injected < self.jobs and not self._stopped:
            self._schedule(
                max(0.0, self.intended_time(self.injected) - env.now)
            )

    def report(self) -> dict[str, Any]:
        return {
            "offered_rate": self.rate,
            "jobs": self.jobs,
            "start_at": self.start_at,
            "injected": self.injected,
        }


# ---------------------------------------------------------------------------
# Grading
# ---------------------------------------------------------------------------
def job_latencies(
    trace: Any, *, rate: float, start_at: float
) -> dict[int, float]:
    """Per-job latency: OUTPUT timestamp minus *intended* injection time.

    Recomputed from the deterministic schedule, not from the injector's
    actual send instant -- queueing delay behind a slow system counts
    against the system, exactly as an external client would experience.
    For duplicate outputs (post-crash redelivery races) the first
    commit wins.
    """
    latencies: dict[int, float] = {}
    for event in trace.events(EventKind.OUTPUT):
        value = event.get("value")
        if (
            not isinstance(value, tuple)
            or len(value) != 3
            or value[0] != "done"
        ):
            continue
        job = value[1]
        if job in latencies:
            continue
        latencies[job] = event.time - (start_at + job / rate)
    return latencies


def _scenario_report(
    result: LiveRunResult, *, rate: float, start_at: float
) -> dict[str, Any]:
    spec = result.spec
    verdict = check_live_run(result.trace, n=spec.n, jobs=spec.jobs)
    latencies = sorted(
        job_latencies(result.trace, rate=rate, start_at=start_at).values()
    )
    delivered = result.total_delivered
    window = active_window(result.trace)
    active_seconds = (window[1] - window[0]) if window else None
    injected = sum(
        d.get("load", {}).get("injected", 0) for d in result.done.values()
    )
    offered_seconds = spec.jobs / rate
    # "Sustained" means the system kept pace with the open-loop schedule:
    # the active window barely outlasts the offered window.  A saturated
    # run also commits every output eventually (the drain budget sees to
    # that) -- what distinguishes it is the long tail past the window.
    sustained = bool(
        verdict.ok
        and verdict.outputs_committed == spec.jobs
        and active_seconds is not None
        and active_seconds <= offered_seconds + 1.0
    )
    return {
        "verdict": verdict.summary(),
        "ok": verdict.ok,
        "sustained": sustained,
        "offered_rate": rate,
        "offered_seconds": round(offered_seconds, 3),
        "jobs": spec.jobs,
        "injected": injected,
        "outputs_committed": verdict.outputs_committed,
        "wall_seconds": round(result.wall_seconds, 3),
        "active_seconds": (
            round(active_seconds, 4) if active_seconds else None
        ),
        "app_deliveries": delivered,
        "deliveries_per_second": (
            round(delivered / active_seconds, 2) if active_seconds else None
        ),
        "deliveries_per_second_wall": (
            round(delivered / result.wall_seconds, 2)
            if result.wall_seconds > 0
            else None
        ),
        "job_latency_s": {
            "min": round(latencies[0], 6) if latencies else None,
            "p50": _r6(percentile(latencies, 0.50)),
            "p90": _r6(percentile(latencies, 0.90)),
            "p99": _r6(percentile(latencies, 0.99)),
            "max": round(latencies[-1], 6) if latencies else None,
        },
        "exit_codes": {
            str(pid): code
            for pid, code in sorted(result.exit_codes.items())
        },
    }


def _r6(value: float | None) -> float | None:
    return None if value is None else round(value, 6)


# ---------------------------------------------------------------------------
# Sweep driver
# ---------------------------------------------------------------------------
def load_spec(
    *,
    n: int,
    rate: float,
    duration: float,
    start_at: float = 0.25,
    drain: float = 1.0,
    drain_rate: float = 250.0,
    linger: float = 1.5,
) -> LiveClusterSpec:
    """Cluster spec for one offered-rate scenario.

    The run deadline budgets ``drain + jobs / drain_rate`` beyond the
    offered-load window: past saturation an open-loop source builds a
    backlog, and the scenario must keep running until the system has
    worked it off or the completeness oracle cannot be graded.  The
    budget changes only *when the run stops*, never the injection
    schedule or the latency accounting -- queueing delay still lands on
    every backlogged job, which is what makes the over-saturated points
    of the latency curve honest instead of truncated.  ``drain_rate`` is
    a worst-case floor on sustained job completion, deliberately far
    below observed capacity.

    Stability gossip + GC + history compaction are on: an open-loop run
    delivers orders of magnitude more messages than the classic burst,
    and without pruning, the stable log makes every group-commit rewrite
    of the storage image O(total messages).
    """
    jobs = int(rate * duration)
    return LiveClusterSpec(
        n=n,
        jobs=jobs,
        run_seconds=start_at + duration + drain + jobs / drain_rate,
        linger=linger,
        gossip_stability=True,
        enable_gc=True,
        compact_history=True,
        app={
            "kind": "load",
            "jobs": jobs,
            "rate": rate,
            "start_at": start_at,
        },
    )


def run_load_bench(
    workdir: str,
    *,
    n: int = 4,
    rates: Sequence[float] = (250.0, 500.0, 1000.0, 2000.0),
    duration: float = 4.0,
    start_at: float = 0.25,
) -> dict[str, Any]:
    """Run one cluster per offered rate; returns the payload for
    ``BENCH_load.json``."""
    scenarios: dict[str, Any] = {}
    for rate in rates:
        spec = load_spec(
            n=n, rate=rate, duration=duration, start_at=start_at
        )
        result = run_cluster(
            spec, os.path.join(workdir, f"rate_{int(rate)}")
        )
        scenarios[f"rate_{int(rate)}"] = _scenario_report(
            result, rate=rate, start_at=start_at
        )
    sustained = [
        s["offered_rate"] for s in scenarios.values() if s["sustained"]
    ]
    return {
        "benchmark": "live-load",
        "protocol": "damani-garg",
        "n": n,
        "duration_s": duration,
        "offered_rates": list(rates),
        "max_sustained_rate": max(sustained) if sustained else None,
        "peak_deliveries_per_second": max(
            (
                s["deliveries_per_second"]
                for s in scenarios.values()
                if s["deliveries_per_second"]
            ),
            default=None,
        ),
        "cpus": os.cpu_count(),
        "scenarios": scenarios,
    }


def write_load_bench(
    path: str, workdir: str, **kwargs: Any
) -> dict[str, Any]:
    payload = run_load_bench(workdir, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


# ---------------------------------------------------------------------------
# Regression gate (CI)
# ---------------------------------------------------------------------------
def check_load_payload(
    payload: dict[str, Any], *, min_deliveries_per_sec: float
) -> list[str]:
    """CI gate over a finished sweep; returns human-readable violations.

    Checks, per scenario: the oracle verdict, non-negative latencies (a
    negative latency means the clock-anchoring contract broke again),
    and -- for the sweep's best scenario -- the throughput floor.
    """
    problems: list[str] = []
    best = 0.0
    for name, s in payload.get("scenarios", {}).items():
        if not s.get("ok"):
            problems.append(f"{name}: oracle FAIL ({s.get('verdict')})")
        lat = s.get("job_latency_s", {})
        low = lat.get("min")
        if low is not None and low < 0:
            problems.append(
                f"{name}: negative job latency {low}s -- env clocks are "
                f"warped"
            )
        rate = s.get("deliveries_per_second") or 0.0
        best = max(best, rate)
    if best < min_deliveries_per_sec:
        problems.append(
            f"peak throughput {best:.1f} deliveries/sec is below the "
            f"floor of {min_deliveries_per_sec:.1f}"
        )
    return problems


def append_trend_row(path: str, payload: dict[str, Any]) -> dict[str, Any]:
    """Append one JSONL trend row so cross-PR throughput regressions are
    visible (and CI-checkable) without storing every full report."""
    row = {
        "ts": round(time.time(), 3),
        "n": payload.get("n"),
        "duration_s": payload.get("duration_s"),
        "offered_rates": payload.get("offered_rates"),
        "max_sustained_rate": payload.get("max_sustained_rate"),
        "peak_deliveries_per_second": payload.get(
            "peak_deliveries_per_second"
        ),
        "cpus": payload.get("cpus"),
    }
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    return row


def check_trend(
    path: str, payload: dict[str, Any], *, tolerance: float = 0.5
) -> list[str]:
    """Compare this sweep against the recorded trend.

    Fails when peak throughput drops below ``tolerance`` times the best
    previously recorded row (machines differ, so the gate is loose --
    it catches collapses, not noise).
    """
    if not os.path.exists(path):
        return []
    best_prior = 0.0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            best_prior = max(
                best_prior, row.get("peak_deliveries_per_second") or 0.0
            )
    current = payload.get("peak_deliveries_per_second") or 0.0
    if best_prior > 0 and current < tolerance * best_prior:
        return [
            f"peak throughput {current:.1f}/s regressed below "
            f"{tolerance:.0%} of the best recorded {best_prior:.1f}/s"
        ]
    return []
