"""Operator rollback: rewind a *stopped* cluster to a checkpoint frontier.

``python -m repro rollback`` rolls every node's stable-storage image back
to a chosen anchor checkpoint -- the latest one at or before ``--at``, or
the earliest retained one (``--earliest``).  This is the operator-grade
escape hatch for the cases the protocol cannot fix by itself: a bad
deploy, a poisoned input, an application bug that corrupted state *after*
it was durably checkpointed.

Three rules make it auditable:

1. **Nothing is deleted.**  Checkpoints and stable log entries past the
   anchor are *moved* to a durable orphan area (:data:`ORPHANS_KEY`)
   before the primary structures are rewound; an operator can inspect or
   export them indefinitely.
2. **Every run is witnessed.**  An audit record naming the anchor, the
   orphan counts, the operator's ``--reason`` and ``--witness``, and
   blake2b digests of the storage image before and after is appended both
   to a durable key (:data:`AUDIT_KEY`) inside the image and to
   ``rollback_audit.json`` in the data directory.
3. **Every crash window is covered.**  The whole transition runs under an
   ``operator-rollback`` write-ahead intent
   (:mod:`repro.storage.intents`); a SIGKILL at any persist boundary is
   rolled *forward* by the startup crawler from the recorded payload, so
   a half-rewound image cannot boot.

After the rollback, restarting the cluster over the same data directory
recovers through the ordinary ``on_restart`` path: each node restores its
anchor, broadcasts a recovery token, and Remark-1 retransmission (the
send log is part of every checkpoint) re-drives the lost interval.
Orphaned records are *not* re-presented -- the operator asked for those
events to be undone.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any

from repro.live.storage import FileStableStorage
from repro.storage import intents
from repro.storage.intents import heal

#: Durable orphan area: list of preservation records, one per rollback.
ORPHANS_KEY = "operator_orphans"
#: Durable copy of the witnessed audit records.
AUDIT_KEY = "operator_rollback_audit"


@dataclass
class PidRollbackReport:
    """What one node's rewind did (or would do, under ``--dry-run``)."""

    pid: int
    anchor_ckpt_id: int
    anchor_time: float
    anchor_log_position: int
    checkpoints_orphaned: int
    log_entries_orphaned: int
    stable_own: Any
    digest_before: str
    digest_after: str | None = None   # None on dry runs
    heal_actions: list[dict[str, Any]] = field(default_factory=list)
    dry_run: bool = False


class RollbackError(RuntimeError):
    """No usable anchor (or no storage image) for a node."""


def _digest(path: str) -> str:
    with open(path, "rb") as fh:
        return hashlib.blake2b(fh.read(), digest_size=16).hexdigest()


def _choose_anchor(storage: FileStableStorage, at: float | None,
                   earliest: bool):
    checkpoints = list(storage.checkpoints)
    if not checkpoints:
        return None
    if earliest:
        return checkpoints[0]
    return storage.checkpoints.latest_satisfying(lambda c: c.time <= at)


def rollback_storage(
    storage: FileStableStorage,
    *,
    at: float | None = None,
    earliest: bool = False,
    reason: str = "",
    witness: str = "",
    dry_run: bool = False,
) -> PidRollbackReport:
    """Rewind one node's image to its anchor checkpoint.

    The caller guarantees the owning node process is stopped; this
    function then owns the image exclusively.
    """
    # Repair any in-flight intent a crashed incarnation left behind --
    # the frontier below must be computed against a consistent image.
    heal_actions = [] if dry_run else heal(storage)
    anchor = _choose_anchor(storage, at, earliest)
    if anchor is None:
        where = "earliest" if earliest else f"at or before t={at}"
        raise RollbackError(
            f"p{storage.pid}: no anchor checkpoint {where}"
        )
    orphan_ckpts = [
        c for c in storage.checkpoints if c.ckpt_id > anchor.ckpt_id
    ]
    truncate_at = anchor.log_position
    orphan_entries = (
        list(storage.log.stable_entries(truncate_at))
        if storage.log.stable_length > truncate_at
        else []
    )
    anchor_clock = anchor.extras.get("clock")
    stable_own = (
        anchor_clock[storage.pid] if anchor_clock is not None else None
    )
    report = PidRollbackReport(
        pid=storage.pid,
        anchor_ckpt_id=anchor.ckpt_id,
        anchor_time=anchor.time,
        anchor_log_position=truncate_at,
        checkpoints_orphaned=len(orphan_ckpts),
        log_entries_orphaned=len(orphan_entries),
        stable_own=stable_own,
        digest_before=_digest(storage.path),
        heal_actions=heal_actions,
        dry_run=dry_run,
    )
    if dry_run:
        return report

    intent = storage.begin_intent(
        intents.OPERATOR_ROLLBACK,
        anchor_ckpt_id=anchor.ckpt_id,
        truncate_at=truncate_at,
        stable_own=stable_own,
        reason=reason,
        witness=witness,
    )
    # Step 1: preserve before rewinding.  This persist is the point of no
    # return -- from here a crash heals forward to the anchored frontier.
    storage.advance_intent(intent, "orphans_preserved")
    area = list(storage.get(ORPHANS_KEY) or [])
    area.append(
        {
            "preserved_at": time.time(),
            "anchor_ckpt_id": anchor.ckpt_id,
            "reason": reason,
            "witness": witness,
            "checkpoints": orphan_ckpts,
            "entries": orphan_entries,
        }
    )
    storage.put(ORPHANS_KEY, area)
    # Step 2: rewind the checkpoint store.
    storage.advance_intent(intent, "checkpoints_discarded")
    storage.checkpoints.discard_after(anchor)
    # Step 3: rewind the stable log and restore the durable clock
    # frontier the anchor certifies.
    storage.advance_intent(intent, "log_truncated")
    if storage.log.stable_length > truncate_at:
        storage.log.truncate(truncate_at)
    if stable_own is not None:
        storage.put("stable_own", stable_own)
    # Commit rides the durable audit write: once the record is on disk
    # the intent-free image is the rolled-back one.
    storage.commit_intent(intent)
    audit = _audit_record(report, reason, witness)
    tail = list(storage.get(AUDIT_KEY) or [])
    tail.append(audit)
    storage.put(AUDIT_KEY, tail)
    report.digest_after = _digest(storage.path)
    return report


def _audit_record(
    report: PidRollbackReport, reason: str, witness: str
) -> dict[str, Any]:
    return {
        "rolled_back_at": time.time(),
        "pid": report.pid,
        "anchor_ckpt_id": report.anchor_ckpt_id,
        "anchor_time": report.anchor_time,
        "anchor_log_position": report.anchor_log_position,
        "checkpoints_orphaned": report.checkpoints_orphaned,
        "log_entries_orphaned": report.log_entries_orphaned,
        "digest_before": report.digest_before,
        "reason": reason,
        "witness": witness,
    }


def rollback_cluster(
    data_dir: str,
    n: int,
    *,
    at: float | None = None,
    earliest: bool = False,
    reason: str = "",
    witness: str = "",
    dry_run: bool = False,
    pids: list[int] | None = None,
) -> dict[str, Any]:
    """Rewind every node image under ``data_dir``; write the audit file.

    Returns ``{"reports": {pid: PidRollbackReport}, "audit_path": ...}``.
    """
    if at is None and not earliest:
        raise RollbackError("choose a frontier: --at TIME or --earliest")
    targets = list(pids) if pids is not None else list(range(n))
    reports: dict[int, PidRollbackReport] = {}
    for pid in targets:
        path = os.path.join(data_dir, f"stable_p{pid}.pickle")
        if not os.path.exists(path):
            raise RollbackError(f"p{pid}: no storage image at {path}")
        storage = FileStableStorage(pid, path)
        reports[pid] = rollback_storage(
            storage,
            at=at,
            earliest=earliest,
            reason=reason,
            witness=witness,
            dry_run=dry_run,
        )
    audit_path = None
    if not dry_run:
        audit_path = os.path.join(data_dir, "rollback_audit.json")
        records = []
        if os.path.exists(audit_path):
            with open(audit_path, "r", encoding="utf-8") as fh:
                records = json.load(fh)
        for pid in sorted(reports):
            entry = _audit_record(reports[pid], reason, witness)
            entry["digest_after"] = reports[pid].digest_after
            records.append(entry)
        tmp = audit_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(records, fh, indent=2, default=repr)
        os.replace(tmp, audit_path)
    return {"reports": reports, "audit_path": audit_path}


def describe(report: PidRollbackReport) -> str:
    head = "would rewind" if report.dry_run else "rewound"
    return (
        f"p{report.pid}: {head} to checkpoint "
        f"#{report.anchor_ckpt_id} (t={report.anchor_time:.3f}, "
        f"log@{report.anchor_log_position}); orphaned "
        f"{report.checkpoints_orphaned} checkpoint(s), "
        f"{report.log_entries_orphaned} log entr(ies)"
    )


__all__ = [
    "AUDIT_KEY",
    "ORPHANS_KEY",
    "PidRollbackReport",
    "RollbackError",
    "describe",
    "rollback_cluster",
    "rollback_storage",
]
