"""Compact binary wire codec for the live cluster (the wire fast path).

Replaces the tagged-JSON text codec on the TCP links with struct-packed
varint frames.  Every frame starts with a magic byte (0xB5, impossible as
the first byte of a JSON text frame, which starts with ``{`` = 0x7B) and a
wire-format version byte, so the receive side keeps decoding legacy JSON
frames from older peers or recorded traffic: dispatch is per frame, by
first byte.

Two stateful optimizations ride on the fact that encoder and decoder live
on the two ends of one TCP connection and observe the same byte stream in
the same order:

- **FTVC delta chains** -- the first clock on a connection is encoded in
  full; each later clock is encoded as the ``(index, version, timestamp)``
  diff against the previous clock on the *same* connection whenever that
  is smaller.  A reconnect (peer crash, transient drop) builds a fresh
  encoder, so the chain restarts with a full clock: the full-clock
  fallback the delta scheme needs after a failure is exactly the
  connection lifecycle.
- **Dataclass interning** -- the first instance of a dataclass on a
  connection carries its ``module:QualName`` path and field names
  (``DC_DEF``); later instances reference the definition by a small
  integer (``DC_REF``) and carry field values only.

Security note: like the JSON codec, the decoder only instantiates
dataclasses defined in modules under ``repro.`` (shared
:func:`repro.live.codec.resolve_dataclass` check).
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any

from repro.core.ftvc import FaultTolerantVectorClock
from repro.live.codec import (
    TRUSTED_PREFIX,
    CodecError,
    canonical_key,
    resolve_dataclass,
)

#: First byte of every binary frame; a JSON frame starts with ``{`` (0x7B).
MAGIC = 0xB5
#: Bump when the byte layout changes; the receiver rejects unknown versions.
WIRE_VERSION = 1

# Frame types (byte 2 of a binary frame).
FRAME_HELLO = 1
FRAME_DATA = 2
FRAME_ACK = 3

# Value tags.
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3          # zigzag varint
_T_FLOAT = 4        # IEEE-754 double, big-endian
_T_STR = 5          # varint byte length + UTF-8
_T_LIST = 6         # varint count + items
_T_TUPLE = 7
_T_SET = 8          # canonical element order (deterministic wire image)
_T_FROZENSET = 9
_T_DICT = 10        # varint count + (key, value) pairs, insertion order
_T_DC_DEF = 11      # varint id + path + field names + field values
_T_DC_REF = 12      # varint id + field values
_T_FTVC_FULL = 13   # varint n + n * (varint version, varint timestamp)
_T_FTVC_DELTA = 14  # varint k + k * (varint idx, version, timestamp)

_FLOAT = struct.Struct(">d")


def _put_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise CodecError(f"uvarint cannot encode negative {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _put_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    _put_uvarint(out, len(data))
    out += data


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


class _Reader:
    """Cursor over one frame's bytes."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self._data = data
        self._pos = pos

    def byte(self) -> int:
        try:
            value = self._data[self._pos]
        except IndexError:
            raise CodecError("truncated frame") from None
        self._pos += 1
        return value

    def uvarint(self) -> int:
        value = 0
        shift = 0
        while True:
            byte = self.byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise CodecError("varint too long")

    def read(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise CodecError("truncated frame")
        chunk = self._data[self._pos:end]
        self._pos = end
        return bytes(chunk)

    def text(self) -> str:
        return self.read(self.uvarint()).decode("utf-8")

    def at_end(self) -> bool:
        return self._pos == len(self._data)


def is_binary(data: bytes) -> bool:
    """Is this frame ours?  Anything else falls back to the JSON codec."""
    return bool(data) and data[0] == MAGIC


def frame_type(data: bytes) -> int:
    """Frame type of a binary frame (call :func:`is_binary` first)."""
    if len(data) < 3:
        raise CodecError("binary frame shorter than its header")
    if data[1] != WIRE_VERSION:
        raise CodecError(
            f"wire version {data[1]} not supported (expected {WIRE_VERSION})"
        )
    return data[2]


def hello_frame(pid: int, boot: int) -> bytes:
    out = bytearray((MAGIC, WIRE_VERSION, FRAME_HELLO))
    _put_uvarint(out, pid)
    _put_uvarint(out, boot)
    return bytes(out)


def parse_hello(data: bytes) -> tuple[int, int]:
    reader = _Reader(data, 3)
    pid = reader.uvarint()
    boot = reader.uvarint()
    if not reader.at_end():
        raise CodecError("trailing bytes after hello")
    return pid, boot


def ack_frame(seq: int) -> bytes:
    out = bytearray((MAGIC, WIRE_VERSION, FRAME_ACK))
    _put_uvarint(out, seq)
    return bytes(out)


def parse_ack(data: bytes) -> int:
    reader = _Reader(data, 3)
    seq = reader.uvarint()
    if not reader.at_end():
        raise CodecError("trailing bytes after ack")
    return seq


class WireEncoder:
    """One connection's sending side: delta chains + interning state.

    Create a fresh encoder per connection; reusing one across connections
    would desynchronise its state from the peer's :class:`WireDecoder`.
    """

    __slots__ = ("_dc_ids", "_last_clock")

    def __init__(self) -> None:
        self._dc_ids: dict[type, int] = {}
        self._last_clock: FaultTolerantVectorClock | None = None

    def data_frame(self, seq: int, msg: Any) -> bytes:
        out = bytearray((MAGIC, WIRE_VERSION, FRAME_DATA))
        _put_uvarint(out, seq)
        self._encode(out, msg)
        return bytes(out)

    def encode_value(self, value: Any) -> bytes:
        """Encode a bare value (tests and size accounting)."""
        out = bytearray()
        self._encode(out, value)
        return bytes(out)

    def _encode(self, out: bytearray, value: Any) -> None:
        if value is None:
            out.append(_T_NONE)
            return
        if isinstance(value, bool):
            out.append(_T_TRUE if value else _T_FALSE)
            return
        if isinstance(value, int):
            out.append(_T_INT)
            _put_uvarint(out, _zigzag(value))
            return
        if isinstance(value, float):
            out.append(_T_FLOAT)
            out += _FLOAT.pack(value)
            return
        if isinstance(value, str):
            out.append(_T_STR)
            _put_str(out, value)
            return
        if isinstance(value, FaultTolerantVectorClock):
            self._encode_clock(out, value)
            return
        if isinstance(value, (list, tuple)):
            out.append(_T_LIST if isinstance(value, list) else _T_TUPLE)
            _put_uvarint(out, len(value))
            for item in value:
                self._encode(out, item)
            return
        if isinstance(value, (set, frozenset)):
            out.append(
                _T_FROZENSET if isinstance(value, frozenset) else _T_SET
            )
            _put_uvarint(out, len(value))
            for item in sorted(value, key=canonical_key):
                self._encode(out, item)
            return
        if isinstance(value, dict):
            out.append(_T_DICT)
            _put_uvarint(out, len(value))
            for key, val in value.items():
                self._encode(out, key)
                self._encode(out, val)
            return
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            self._encode_dataclass(out, value)
            return
        raise CodecError(f"cannot encode {type(value).__name__}: {value!r}")

    def _encode_clock(
        self, out: bytearray, clock: FaultTolerantVectorClock
    ) -> None:
        base = self._last_clock
        if base is not None and len(base) == len(clock):
            changes = clock.diff(base)
            # A delta entry costs an index varint on top of the pair, so
            # it only wins while few entries moved.
            if 3 * len(changes) < 2 * len(clock):
                out.append(_T_FTVC_DELTA)
                _put_uvarint(out, len(changes))
                for index, version, timestamp in changes:
                    _put_uvarint(out, index)
                    _put_uvarint(out, version)
                    _put_uvarint(out, timestamp)
                self._last_clock = clock
                return
        out.append(_T_FTVC_FULL)
        _put_uvarint(out, len(clock))
        for version, timestamp in clock.pairs():
            _put_uvarint(out, version)
            _put_uvarint(out, timestamp)
        self._last_clock = clock

    def _encode_dataclass(self, out: bytearray, value: Any) -> None:
        cls = type(value)
        fields = dataclasses.fields(value)
        dc_id = self._dc_ids.get(cls)
        if dc_id is None:
            if not cls.__module__.startswith(TRUSTED_PREFIX):
                raise CodecError(
                    f"refusing to encode non-repro dataclass "
                    f"{cls.__module__}.{cls.__qualname__}"
                )
            dc_id = len(self._dc_ids)
            self._dc_ids[cls] = dc_id
            out.append(_T_DC_DEF)
            _put_uvarint(out, dc_id)
            _put_str(out, f"{cls.__module__}:{cls.__qualname__}")
            _put_uvarint(out, len(fields))
            for field in fields:
                _put_str(out, field.name)
        else:
            out.append(_T_DC_REF)
            _put_uvarint(out, dc_id)
        for field in fields:
            self._encode(out, getattr(value, field.name))


class WireDecoder:
    """One connection's receiving side; mirrors :class:`WireEncoder`.

    The chain/interning state advances on every frame decoded, so the
    transport must decode *every* data frame it reads -- including
    duplicates it will not deliver -- to stay in lockstep with the sender.
    """

    __slots__ = ("_dc_defs", "_last_clock")

    def __init__(self) -> None:
        self._dc_defs: list[tuple[type, tuple[str, ...]]] = []
        self._last_clock: FaultTolerantVectorClock | None = None

    def decode_data(self, data: bytes) -> tuple[int, Any]:
        """Decode a FRAME_DATA frame into ``(seq, value)``."""
        reader = _Reader(data, 3)
        seq = reader.uvarint()
        value = self._decode(reader)
        if not reader.at_end():
            raise CodecError("trailing bytes after value")
        return seq, value

    def decode_value(self, data: bytes) -> Any:
        """Decode a bare value produced by ``encode_value``."""
        reader = _Reader(data)
        value = self._decode(reader)
        if not reader.at_end():
            raise CodecError("trailing bytes after value")
        return value

    def _decode(self, reader: _Reader) -> Any:
        tag = reader.byte()
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return _unzigzag(reader.uvarint())
        if tag == _T_FLOAT:
            return _FLOAT.unpack(reader.read(_FLOAT.size))[0]
        if tag == _T_STR:
            return reader.text()
        if tag == _T_LIST:
            return [self._decode(reader) for _ in range(reader.uvarint())]
        if tag == _T_TUPLE:
            return tuple(
                self._decode(reader) for _ in range(reader.uvarint())
            )
        if tag == _T_SET:
            return {self._decode(reader) for _ in range(reader.uvarint())}
        if tag == _T_FROZENSET:
            return frozenset(
                self._decode(reader) for _ in range(reader.uvarint())
            )
        if tag == _T_DICT:
            return {
                self._decode(reader): self._decode(reader)
                for _ in range(reader.uvarint())
            }
        if tag == _T_DC_DEF:
            return self._decode_dc_def(reader)
        if tag == _T_DC_REF:
            return self._decode_dc_ref(reader)
        if tag == _T_FTVC_FULL:
            count = reader.uvarint()
            clock = FaultTolerantVectorClock.of(
                (reader.uvarint(), reader.uvarint()) for _ in range(count)
            )
            self._last_clock = clock
            return clock
        if tag == _T_FTVC_DELTA:
            base = self._last_clock
            if base is None:
                raise CodecError("clock delta with no prior clock")
            changes = [
                (reader.uvarint(), reader.uvarint(), reader.uvarint())
                for _ in range(reader.uvarint())
            ]
            clock = FaultTolerantVectorClock.from_delta(base, changes)
            self._last_clock = clock
            return clock
        raise CodecError(f"unknown wire tag {tag}")

    def _decode_dc_def(self, reader: _Reader) -> Any:
        dc_id = reader.uvarint()
        if dc_id != len(self._dc_defs):
            raise CodecError(
                f"dataclass definition id {dc_id} out of order "
                f"(expected {len(self._dc_defs)})"
            )
        cls = resolve_dataclass(reader.text())
        names = tuple(reader.text() for _ in range(reader.uvarint()))
        declared = {f.name for f in dataclasses.fields(cls)}
        if set(names) != declared:
            raise CodecError(
                f"field names {names!r} do not match "
                f"{cls.__qualname__}'s fields"
            )
        self._dc_defs.append((cls, names))
        return self._instantiate(cls, names, reader)

    def _decode_dc_ref(self, reader: _Reader) -> Any:
        dc_id = reader.uvarint()
        if dc_id >= len(self._dc_defs):
            raise CodecError(f"dataclass reference {dc_id} never defined")
        cls, names = self._dc_defs[dc_id]
        return self._instantiate(cls, names, reader)

    def _instantiate(
        self, cls: type, names: tuple[str, ...], reader: _Reader
    ) -> Any:
        values = {name: self._decode(reader) for name in names}
        return cls(**values)
