"""One live cluster member: ``python -m repro.live.node --config FILE``.

The node builds the full stack -- file-backed storage, mesh transport,
:class:`~repro.live.env.LiveEnv`, the protocol named in the config -- and
runs until the cluster-wide deadline.  On its first boot it calls the
protocol's ``on_start``; after a crash (the supervisor SIGKILLs the
process and spawns a fresh one over the same storage directory) the new
incarnation detects the prior boot in stable storage and calls
``on_restart`` instead, which is all the recovery the paper's protocol
needs: restore, replay, broadcast the token, move on.

Startup is a two-phase barrier.  The node makes its durable boot record
and binds its server port first, and only then waits for the supervisor
to publish the cluster epoch (``epoch_path`` appears once every port in
the mesh is accepting).  That ordering guarantees a SIGKILL delivered at
any env-time ``t >= 0`` hits a process whose boot count is already on
stable storage -- so the next incarnation always knows it is a restart.
Without the barrier, a kill landing during interpreter startup leaves no
trace on disk and the respawn would wrongly boot fresh.

Config file (JSON)::

    {
      "pid": 0, "n": 4,
      "host": "127.0.0.1", "ports": [43001, 43002, 43003, 43004],
      "epoch_path": ".../epoch.json",   # supervisor publishes {"epoch": ...}
      "run_until": 6.0,             # env-time deadline for new work
      "linger": 1.5,                # grace period for in-flight traffic
      "protocol": "damani-garg",
      "app": {"kind": "pipeline", "jobs": 32},
      "config": {"checkpoint_interval": 0.5, ...},
      "data_dir": ".../data",       # stable storage lives here
      "trace_path": ".../trace_p0.jsonl",
      "done_path": ".../done_p0.json"
    }
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import os
import signal
import sys
import time
from typing import Any

from repro.apps.applications import PipelineApp
from repro.harness.conformance import PROTOCOL_REGISTRY
from repro.live import codec
from repro.live.env import LiveEnv, LiveTrace
from repro.live.faults import NodeFaults
from repro.live.storage import FileStableStorage
from repro.live.transport import MeshTransport
from repro.protocols.base import ProtocolConfig
from repro.storage.intents import heal

_BOOTS_KEY = "node_boots"


def build_app(spec: dict[str, Any]):
    kind = spec.get("kind", "pipeline")
    if kind == "pipeline":
        return PipelineApp(jobs=int(spec.get("jobs", 32)))
    if kind == "load":
        from repro.live.load import LoadPipelineApp

        return LoadPipelineApp(jobs=int(spec.get("jobs", 32)))
    if kind == "kv":
        from repro.service.kv import KVServiceApp

        return KVServiceApp(replicas=int(spec.get("replicas", 3)))
    raise ValueError(f"unknown app kind {kind!r}")


async def _await_epoch(path: str, timeout: float = 30.0) -> tuple[float, float]:
    """Poll for the supervisor's epoch file (written atomically).

    Returns ``(epoch, mono_anchor)`` where ``mono_anchor`` is the
    ``time.monotonic()`` reading corresponding to env-time zero, computed
    at the observation instant.  This is the process's single wall-clock
    read: from here on, env-time is purely monotonic, so wall-clock steps
    (NTP, a virtualised clock jumping) cannot warp timestamps or make
    latencies negative.  The supervisor publishes the epoch *before* any
    node can observe it, so ``time.time() - epoch >= 0`` here and env-time
    starts non-negative on every process.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                epoch = float(json.load(fh)["epoch"])
            mono_anchor = time.monotonic() - (time.time() - epoch)
            return epoch, mono_anchor
        await asyncio.sleep(0.01)
    raise RuntimeError(f"epoch file {path} never appeared")


async def run_node(cfg: dict[str, Any]) -> dict[str, Any]:
    pid = int(cfg["pid"])
    # Phase 1: durable boot record, THEN the server port.  A listening
    # port is the readiness signal the supervisor waits for, so any
    # SIGKILL it injects later finds the boot count already on disk.
    storage = FileStableStorage(
        pid,
        os.path.join(cfg["data_dir"], f"stable_p{pid}.pickle"),
        flush_window=float(cfg.get("storage_flush_window", 0.0)),
    )
    # Startup recovery crawler: repair any multi-step durable transition
    # the killed incarnation left in flight, before anything (the boot
    # counter, the transport outbox) reads the image.
    heal_actions = heal(storage)
    boot = storage.get(_BOOTS_KEY, 0) + 1
    storage.put(_BOOTS_KEY, boot)
    # Crash-window fault injection: "<kind>:<step>" from the config arms
    # a one-shot SIGKILL that fires right after the persist that leaves
    # exactly that partial image on disk.  Armed after the heal so the
    # crawler's own writes cannot trip it.
    if cfg.get("crash_point"):
        storage.arm_crash_point(
            str(cfg["crash_point"]),
            action=lambda point: os.kill(os.getpid(), signal.SIGKILL),
        )

    # Fault schedule (this node's slice of the cluster's LiveFaultPlan).
    # Inactive until set_clock below: no window exists before env-time 0,
    # so the mesh handshake and epoch barrier are never disturbed.
    faults = NodeFaults(pid, cfg.get("faults", {}))
    storage.fault_hook = faults.disk_fault

    transport = MeshTransport(
        pid,
        int(cfg["n"]),
        list(cfg["ports"]),
        host=cfg.get("host", "127.0.0.1"),
        boot=boot,
        storage=storage,
        wire_format=cfg.get("wire_format", "binary"),
        faults=faults,
    )
    await transport.start()

    # Phase 2: the epoch exists once the whole mesh is up.  Messages
    # arriving in the meantime are buffered by the transport and drained
    # only after on_start/on_restart has run (attach defers the drain).
    # The timeout scales with n via the config: booting a 64-node mesh
    # serialises ~65 interpreter starts on small machines, which can
    # exceed the old fixed 30 s before the last port accepts.
    epoch, mono_anchor = await _await_epoch(
        cfg["epoch_path"], timeout=float(cfg.get("epoch_timeout", 30.0))
    )

    trace = LiveTrace(
        open(cfg["trace_path"], "a", encoding="utf-8"),
        buffer_records=int(cfg.get("trace_buffer_records", 64)),
        buffer_seconds=float(cfg.get("trace_buffer_seconds", 0.05)),
    )
    # Flush-before-barrier rule: the trace buffer hits the file before
    # every stable-storage persist, so any record describing a durable
    # effect is on disk no later than the barrier that made the effect
    # durable.  See LiveTrace's bounded-loss rule.
    storage.pre_persist_hook = trace.flush
    tracer = None
    if cfg.get("obs"):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
    env = LiveEnv(
        pid=pid,
        n=int(cfg["n"]),
        storage=storage,
        transport=transport,
        epoch=epoch,
        crash_count=boot - 1,
        trace=trace,
        tracer=tracer,
        mono_anchor=mono_anchor,
    )
    if tracer is not None:
        tracer.bind_clock(lambda: env.now)
    # Arm the fault schedule on the shared epoch clock -- the same clock
    # the supervisor schedules SIGKILLs on, so fault windows and crash
    # times compose on one timeline.
    faults.set_clock(lambda: env.now)
    protocol_cls = PROTOCOL_REGISTRY[cfg.get("protocol", "damani-garg")]
    app = build_app(cfg.get("app", {}))
    protocol = protocol_cls(
        env, app, ProtocolConfig(**cfg.get("config", {})),
    )
    if boot == 1:
        protocol.on_start()
    else:
        # The crash itself happened to the previous OS process; this
        # incarnation only has to recover.  The simulator's host resumes
        # the timer chains for us; here they died with the process, so
        # they are started fresh.
        protocol.on_restart()
        protocol.start_periodic_tasks()

    app_spec = cfg.get("app", {})
    source = None
    if app_spec.get("kind") == "load" and pid == 0:
        from repro.live.load import OpenLoopSource

        source = OpenLoopSource(
            protocol,
            rate=float(app_spec.get("rate", 100.0)),
            jobs=int(app_spec.get("jobs", 32)),
            start_at=float(app_spec.get("start_at", 0.25)),
        )
        source.start()
    service = None
    if app_spec.get("kind") == "kv":
        from repro.service.gateway import ServicePort

        service = ServicePort(pid, protocol, app, app_spec)
        await service.start()

    # The deadline runs on the env clock (monotonic since the anchor), so
    # a wall-clock step mid-run cannot stretch or truncate the schedule.
    # An optional stop file turns the deadline into a cap: the node ends
    # its run phase as soon as the supervisor's owner publishes the file.
    run_until = float(cfg["run_until"])
    stop_path = cfg.get("stop_path")
    while env.now < run_until:
        if stop_path and os.path.exists(stop_path):
            break
        await asyncio.sleep(min(0.05, max(0.005, run_until - env.now)))
    if source is not None:
        source.stop()
    protocol.halt_periodic_tasks()
    # Let in-flight traffic (including our own retransmissions) settle.
    # The service port stays open through the linger so clients can drain
    # replies that recovery replay re-emits.
    linger_until = time.monotonic() + float(cfg.get("linger", 1.5))
    while time.monotonic() < linger_until:
        await asyncio.sleep(0.1)
    if service is not None:
        await service.stop()

    stats = dataclasses.asdict(protocol.stats)
    stats["rollbacks_per_failure"] = {
        f"{origin}:{version}": count
        for (origin, version), count in stats["rollbacks_per_failure"].items()
    }
    done = {
        "pid": pid,
        "boot": boot,
        "env_time": env.now,
        "stats": stats,
        "outputs": codec.encode(protocol.outputs),
        "transport": {
            "sent": transport.sent_count,
            "delivered": transport.delivered_count,
            "retransmitted": transport.retransmit_count,
            "unacked": transport.unacked,
            "deliver_errors": transport.deliver_errors,
            "bytes_sent": transport.bytes_sent,
            "bytes_received": transport.bytes_received,
            "data_frames_sent": transport.data_frames_sent,
            "dial_attempts": transport.dial_attempts,
            "wire_format": transport.wire_format,
        },
        "faults": faults.counters(),
        "storage_persists": storage.persist_count,
        "storage_window_flushes": storage.window_flushes,
        "storage_lazy_writes": storage.lazy_writes,
        "storage_sync_writes": storage.sync_writes,
        "storage_dir_fsyncs": storage.dir_fsyncs,
        "token_log_dedups": storage.token_log_dedups,
        "heal_actions": heal_actions,
        "intents": {
            "begun": storage.intents_begun,
            "committed": storage.intents_committed,
            "aborted": storage.intents_aborted,
        },
        "trace_records": trace.records_written,
        "trace_flushes": trace.flushes,
        "trace_records_buffered_max": trace.records_buffered_max,
        "delivery_batches": transport.delivery_batches,
        "delivery_batch_max": transport.delivery_batch_max,
    }
    if tracer is not None:
        done["obs"] = {"counters": dict(tracer.counters)}
    if source is not None:
        done["load"] = source.report()
    if service is not None:
        done["service"] = service.report()
    # Harden any lazy writes still inside the group-commit window before
    # reporting success (the done file implies a clean shutdown).
    storage.sync()
    await transport.stop()
    trace.close()
    return done


def _maybe_install_uvloop(cfg: dict[str, Any]) -> bool:
    """Install uvloop if requested and importable.

    Opt-in via ``"event_loop": "uvloop"`` in the node config or the
    ``REPRO_LIVE_EVENT_LOOP=uvloop`` environment variable.  uvloop is
    never a dependency: when it is absent the stock asyncio loop is used
    silently, so configs are portable across environments with and
    without it.
    """
    want = cfg.get(
        "event_loop", os.environ.get("REPRO_LIVE_EVENT_LOOP", "asyncio")
    )
    if want != "uvloop":
        return False
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        return False
    uvloop.install()
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.live.node")
    parser.add_argument("--config", required=True)
    args = parser.parse_args(argv)
    with open(args.config, "r", encoding="utf-8") as fh:
        cfg = json.load(fh)
    _maybe_install_uvloop(cfg)
    done = asyncio.run(run_node(cfg))
    tmp = cfg["done_path"] + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(done, fh, indent=2)
    os.replace(tmp, cfg["done_path"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
