"""Scale sweep: does the piggyback really stay O(n)?  (Sec 6.9.)

The paper's headline efficiency claim is that the recovery state a
damani-garg message carries -- the failure-tagged vector clock -- grows
linearly in the process count and needs no extra control messages.  Every
other benchmark in this repo runs n=4, where any encoding looks cheap.
``python -m repro scale-bench`` runs one *live* cluster per n in
{4, 8, 16, 32, 64} and charts, against n:

- **piggyback bytes/msg**, full-JSON vs delta-encoded, from the
  ``dg.wire_*`` observability counters the protocol maintains per real
  clock sent (exact wire bytes, not estimates);
- **fsyncs per delivery** (storage persists over messages delivered);
- **deliveries per second** over the trace's active window.

The payload (``BENCH_scale.json``) includes a fitted growth exponent for
both encodings: least squares on log(bytes/msg) vs log(n), so "O(n)"
becomes a number CI can gate (exponent <= ~1.3 allows constant factors
and small-n noise while still rejecting anything quadratic).

Each scenario is an (n+1)-process job -- n nodes plus the supervising
worker -- so the sweep schedules its scenarios through
:class:`~repro.exec.runner.ProcessBudget` admission: scenarios run
concurrently only while their combined process count fits the budget,
which is what keeps an n=64 cluster from landing on top of four other
clusters and timing out its readiness barrier.

Pipeline jobs are *fixed* across n (default 12): the workload per job is
one traversal of the stage chain, so message count grows ~linearly with n
and the per-message piggyback is measured under comparable load, not
under an n-squared message storm.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from typing import Any, Sequence

from repro.live.bench import active_window
from repro.live.supervisor import LiveClusterSpec, run_cluster
from repro.live.verify import check_live_run
from repro.runtime.trace import EventKind

SCALE_BENCH_FORMAT = "repro-scale-bench-v1"

#: Default cluster sizes.  The last point is 65 OS processes; the
#: admission controller is what makes running it routine.
DEFAULT_NS = (4, 8, 16, 32, 64)
DEFAULT_JOBS = 12


def scale_spec(
    *, n: int, jobs: int = DEFAULT_JOBS, stop_path: str | None = None
) -> LiveClusterSpec:
    """Cluster spec for one scale point.

    ``run_seconds`` is a *cap*, not the duration: the scenario publishes
    ``stop_path`` the moment the final stage has committed every job, so
    small n finish in a couple of seconds while the cap grows with n to
    absorb the serialized interpreter boot storm on small machines.
    Checkpoint/flush cadence is uniform across n and deliberately
    relaxed (2 s / 0.5 s): the sweep measures piggyback growth, and a
    64-node fsync storm on the default 0.5 s cadence would swamp the
    delivery path it is trying to time.
    """
    return LiveClusterSpec(
        n=n,
        jobs=jobs,
        run_seconds=20.0 + 0.9 * n,
        linger=1.0,
        checkpoint_interval=2.0,
        flush_interval=0.5,
        stop_path=stop_path,
        obs=True,
    )


def _watch_for_completion(
    trace_path: str, jobs: int, stop_path: str, deadline_mono: float
) -> None:
    """Publish ``stop_path`` once the final stage has committed ``jobs``
    outputs (counted from its trace file), or at the deadline.

    Trace batching delays visibility by at most the buffer age cap
    (50 ms by default) -- noise against the multi-second run cap.
    """
    needle = b'"kind":"output"'
    while time.monotonic() < deadline_mono:
        try:
            with open(trace_path, "rb") as fh:
                if fh.read().count(needle) >= jobs:
                    break
        except OSError:
            pass
        time.sleep(0.1)
    tmp = stop_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write("done\n")
    os.replace(tmp, stop_path)


def run_scale_scenario(payload: dict[str, Any]) -> dict[str, Any]:
    """One scale point: run a live n-node cluster, return its metrics.

    Module-level and JSON-in/JSON-out so the exec engine can ship it to a
    worker process (``Task.fn = "repro.live.scalebench:run_scale_scenario"``,
    weighted ``n + 1`` slots).
    """
    n = int(payload["n"])
    jobs = int(payload.get("jobs", DEFAULT_JOBS))
    workdir = payload["workdir"]
    os.makedirs(workdir, exist_ok=True)
    stop_path = os.path.join(workdir, "stop")
    if os.path.exists(stop_path):
        os.remove(stop_path)
    spec = scale_spec(n=n, jobs=jobs, stop_path=stop_path)

    # The last pipeline stage commits the outputs; watching its trace is
    # the cheapest cluster-completion signal that needs no extra channel.
    watcher = threading.Thread(
        target=_watch_for_completion,
        args=(
            os.path.join(workdir, f"trace_p{n - 1}.jsonl"),
            jobs,
            stop_path,
            time.monotonic() + spec.run_seconds + 60.0,
        ),
        daemon=True,
    )
    watcher.start()
    result = run_cluster(spec, workdir)
    watcher.join(timeout=5.0)

    verdict = check_live_run(result.trace, n=n, jobs=jobs)

    # --- piggyback: exact wire bytes from the dg.wire_* counters -------
    counters: dict[str, float] = {}
    for done in result.done.values():
        for name, value in done.get("obs", {}).get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
    clocks_sent = counters.get("dg.wire_clocks_sent", 0.0)
    full_json_bytes = counters.get("dg.wire_bytes_full_json", 0.0)
    delta_bytes = counters.get("dg.wire_bytes_delta", 0.0)

    # Deterministic fallback the simulator also records (ProtocolStats):
    # kept in the report so the obs numbers can be cross-checked, and so
    # a run without obs still says *something* about piggyback growth.
    stat_piggyback_bits = sum(
        d["stats"]["piggyback_bits"] for d in result.done.values()
    )
    stat_delta_bits = sum(
        d["stats"]["piggyback_delta_bits"] for d in result.done.values()
    )

    delivered = sum(
        d["transport"]["delivered"] for d in result.done.values()
    )
    persists = sum(d["storage_persists"] for d in result.done.values())
    window = active_window(result.trace)
    active_seconds = (window[1] - window[0]) if window else None
    outputs = len(result.trace.events(EventKind.OUTPUT))

    report: dict[str, Any] = {
        "n": n,
        "jobs": jobs,
        "ok": verdict.ok,
        "verdict": verdict.summary(),
        "exit_codes_ok": all(
            code == 0 for code in result.exit_codes.values()
        ),
        "wall_seconds": round(result.wall_seconds, 3),
        "active_seconds": (
            round(active_seconds, 4) if active_seconds else None
        ),
        "deliveries": delivered,
        "deliveries_per_second": (
            round(delivered / active_seconds, 2)
            if active_seconds
            else None
        ),
        "outputs_committed": outputs,
        "storage_persists": persists,
        "fsyncs_per_delivery": (
            round(persists / delivered, 4) if delivered else None
        ),
        "clocks_sent": int(clocks_sent),
        "full_json_bytes_per_msg": (
            round(full_json_bytes / clocks_sent, 2) if clocks_sent else None
        ),
        "delta_bytes_per_msg": (
            round(delta_bytes / clocks_sent, 2) if clocks_sent else None
        ),
        "wire_full_fallbacks": int(
            counters.get("dg.wire_full_fallbacks", 0.0)
        ),
        "stats_piggyback_bytes": stat_piggyback_bits / 8.0,
        "stats_piggyback_delta_bytes": stat_delta_bits / 8.0,
        "trace_records": sum(
            d["trace_records"] for d in result.done.values()
        ),
        "trace_flushes": sum(
            d["trace_flushes"] for d in result.done.values()
        ),
        "delivery_batch_max": max(
            (d["delivery_batch_max"] for d in result.done.values()),
            default=0,
        ),
    }
    return report


def fit_growth_exponent(
    points: Sequence[tuple[float, float]]
) -> float | None:
    """Least-squares slope of log(y) on log(x): the growth exponent.

    Two or more positive points required; the slope is what "bytes/msg
    is O(n^k)" means empirically.
    """
    usable = [(x, y) for x, y in points if x > 0 and y and y > 0]
    if len(usable) < 2:
        return None
    logs = [(math.log(x), math.log(y)) for x, y in usable]
    mean_x = sum(lx for lx, _ in logs) / len(logs)
    mean_y = sum(ly for _, ly in logs) / len(logs)
    denom = sum((lx - mean_x) ** 2 for lx, _ in logs)
    if denom == 0:
        return None
    slope = (
        sum((lx - mean_x) * (ly - mean_y) for lx, ly in logs) / denom
    )
    return slope


def run_scale_bench(
    workdir: str,
    *,
    ns: Sequence[int] = DEFAULT_NS,
    jobs: int = DEFAULT_JOBS,
    runner_jobs: int = 2,
    budget_slots: int | None = None,
) -> dict[str, Any]:
    """Run one live cluster per n; return the ``BENCH_scale.json`` payload.

    Scenarios go through the exec engine under a
    :class:`~repro.exec.runner.ProcessBudget` (default:
    ``ProcessBudget.default()``, one slot per CPU).  Each scenario is
    weighted ``n + 1`` slots, so on a big machine small clusters overlap
    while an n=64 scenario gets the box to itself -- and on a small
    machine everything serialises, which is the honest schedule there.
    """
    from repro.exec.runner import ParallelRunner, ProcessBudget
    from repro.exec.tasks import Task

    os.makedirs(workdir, exist_ok=True)
    budget = (
        ProcessBudget(budget_slots)
        if budget_slots
        else ProcessBudget.default()
    )
    tasks = [
        Task(
            fn="repro.live.scalebench:run_scale_scenario",
            payload={
                "n": n,
                "jobs": jobs,
                "workdir": os.path.join(workdir, f"n_{n}"),
            },
            label=f"n={n}",
            cacheable=False,        # timing measurement; never serve stale
            slots=n + 1,            # n nodes + the supervising worker
        )
        for n in ns
    ]
    runner = ParallelRunner(jobs=max(1, runner_jobs), budget=budget)
    outcomes = runner.map(tasks)

    scenarios: dict[str, Any] = {}
    for n, outcome in zip(ns, outcomes):
        if outcome.ok:
            scenarios[f"n_{n}"] = outcome.value
        else:
            scenarios[f"n_{n}"] = {
                "n": n,
                "ok": False,
                "verdict": f"scenario failed: {outcome.error}",
            }

    full_points = [
        (s["n"], s.get("full_json_bytes_per_msg"))
        for s in scenarios.values()
    ]
    delta_points = [
        (s["n"], s.get("delta_bytes_per_msg")) for s in scenarios.values()
    ]
    full_exp = fit_growth_exponent(full_points)
    delta_exp = fit_growth_exponent(delta_points)
    return {
        "format": SCALE_BENCH_FORMAT,
        "benchmark": "live-scale",
        "protocol": "damani-garg",
        "ns": list(ns),
        "jobs": jobs,
        "runner_jobs": runner_jobs,
        "budget_slots": budget.slots,
        "cpus": os.cpu_count(),
        "growth": {
            # The paper's claim is linear piggyback: exponent ~1 for the
            # full clock.  The delta encoding should grow strictly
            # slower (unchanged entries are elided), so its exponent is
            # the more impressive number -- but the O(n) gate applies to
            # both.
            "full_json_exponent": (
                round(full_exp, 3) if full_exp is not None else None
            ),
            "delta_exponent": (
                round(delta_exp, 3) if delta_exp is not None else None
            ),
            "full_json_bytes_per_msg": {
                str(n): v for n, v in full_points
            },
            "delta_bytes_per_msg": {str(n): v for n, v in delta_points},
        },
        "scenarios": scenarios,
    }


def write_scale_bench(
    path: str, workdir: str, **kwargs: Any
) -> dict[str, Any]:
    payload = run_scale_bench(workdir, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


# ---------------------------------------------------------------------------
# Regression gates (CI)
# ---------------------------------------------------------------------------
def check_scale_payload(
    payload: dict[str, Any], *, max_exponent: float = 1.3
) -> list[str]:
    """Gate over a finished sweep; returns human-readable violations.

    - every scenario's oracle verdict must PASS;
    - the delta encoding must be *strictly* cheaper than full JSON at
      every n (the wire-bench claim, now at scale);
    - both fitted growth exponents must stay at or below
      ``max_exponent`` -- the empirical form of the paper's O(n) claim,
      with headroom for constant factors and small-n noise.
    """
    problems: list[str] = []
    for name, s in payload.get("scenarios", {}).items():
        if not s.get("ok"):
            problems.append(f"{name}: oracle FAIL ({s.get('verdict')})")
            continue
        full = s.get("full_json_bytes_per_msg")
        delta = s.get("delta_bytes_per_msg")
        if not s.get("clocks_sent"):
            problems.append(f"{name}: no clocks observed (obs off?)")
        elif full is None or delta is None:
            problems.append(f"{name}: piggyback bytes missing")
        elif delta >= full:
            problems.append(
                f"{name}: delta encoding ({delta:.1f} B/msg) not below "
                f"full JSON ({full:.1f} B/msg)"
            )
    growth = payload.get("growth", {})
    for label in ("full_json_exponent", "delta_exponent"):
        exponent = growth.get(label)
        if exponent is None:
            problems.append(f"growth: {label} could not be fitted")
        elif exponent > max_exponent:
            problems.append(
                f"growth: {label} {exponent:.2f} exceeds {max_exponent} "
                f"-- piggyback growth is not O(n)"
            )
    return problems


def append_trend_row(path: str, payload: dict[str, Any]) -> dict[str, Any]:
    """Append one JSONL trend row (same pattern as the load bench)."""
    growth = payload.get("growth", {})
    row = {
        "ts": round(time.time(), 3),
        "ns": payload.get("ns"),
        "jobs": payload.get("jobs"),
        "full_json_exponent": growth.get("full_json_exponent"),
        "delta_exponent": growth.get("delta_exponent"),
        "full_json_bytes_per_msg": growth.get("full_json_bytes_per_msg"),
        "delta_bytes_per_msg": growth.get("delta_bytes_per_msg"),
        "cpus": payload.get("cpus"),
    }
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    return row


def check_trend(
    path: str, payload: dict[str, Any], *, tolerance: float = 1.5
) -> list[str]:
    """Compare this sweep's per-n piggyback against the recorded trend.

    For every n both the current sweep and a prior row measured, the
    current delta bytes/msg must not exceed ``tolerance`` times the best
    (smallest) recorded value.  Wire sizes are near-deterministic for a
    fixed workload, so 1.5x is generous -- the gate catches an encoding
    regression, not scheduling noise.
    """
    if not os.path.exists(path):
        return []
    best_prior: dict[str, float] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            for n, value in (row.get("delta_bytes_per_msg") or {}).items():
                if value is None:
                    continue
                if n not in best_prior or value < best_prior[n]:
                    best_prior[n] = value
    problems: list[str] = []
    current = payload.get("growth", {}).get("delta_bytes_per_msg", {})
    for n, value in current.items():
        prior = best_prior.get(n)
        if prior is None or value is None:
            continue
        if value > tolerance * prior:
            problems.append(
                f"n={n}: delta piggyback {value:.1f} B/msg regressed "
                f"beyond {tolerance:.1f}x the best recorded "
                f"{prior:.1f} B/msg"
            )
    return problems
