"""Cluster supervisor: spawn the nodes, kill some of them, merge the story.

The supervisor is the live counterpart of the simulator's
:class:`~repro.sim.failures.FailureInjector`: it starts one OS process
per cluster member, delivers each planned crash with a real ``SIGKILL``
(no cleanup handlers, no flushes -- the closest a kernel offers to the
paper's fail-stop model), restarts the victim after its downtime from
the same stable-storage directory, and finally merges the per-process
JSONL traces (plus its own crash records) into one
:class:`~repro.runtime.trace.SimTrace` the oracles can read.

The cluster epoch (shared env-time zero) is published through a
**readiness barrier**, not a fixed spawn margin: the supervisor polls
every node's transport port until the whole mesh accepts connections,
and only then writes the epoch file the nodes are waiting on.  Interpreter
startup time therefore cannot eat into the schedule -- a crash planned at
env-time ``t`` always hits a node that has durably recorded its boot and
is reachable by its peers, which is what makes crash/restart runs
reproducible enough to grade with the oracles.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any

from repro.live.env import merge_traces
from repro.live.faults import LiveFaultPlan
from repro.runtime.trace import EventKind, SimTrace


@dataclass(frozen=True)
class LiveCrashPlan:
    """SIGKILL process ``pid`` at env-time ``at``; restart after
    ``downtime`` seconds."""

    pid: int
    at: float
    downtime: float = 1.0


@dataclass(frozen=True)
class LiveCrashPointPlan:
    """Arm stable-storage crash point ``point`` on process ``pid``.

    The armed incarnation SIGKILLs *itself* the instant the named
    durable step's persist lands (see :mod:`repro.storage.intents`), so
    the on-disk image at death is exactly the partial state the point
    names.  With ``at`` unset the point is armed at first boot; with
    ``at`` set, an ordinary supervisor SIGKILL is delivered at env-time
    ``at`` and the *respawned* incarnation boots armed instead -- the
    only way to reach the restart-transition crash windows.  Either way
    the supervisor watches for the self-kill, records the CRASH, and
    respawns a clean (unarmed) node after ``downtime``.
    """

    pid: int
    point: str
    at: float | None = None
    downtime: float = 1.0


@dataclass
class LiveClusterSpec:
    """One live run: topology, workload, failure plan, pacing."""

    n: int = 4
    jobs: int = 32
    protocol: str = "damani-garg"
    run_seconds: float = 6.0
    linger: float = 1.5
    checkpoint_interval: float = 0.5
    flush_interval: float = 0.15
    crashes: list[LiveCrashPlan] = field(default_factory=list)
    # Stable-storage crash-window injection (at most one plan per pid):
    # the armed node SIGKILLs itself when the named durable step lands.
    crash_points: list[LiveCrashPointPlan] = field(default_factory=list)
    # Network/disk fault schedule (partitions, gray links, disk faults,
    # corrupt frames).  Compiled per node into the config files; each
    # node enforces its slice on the shared epoch clock.
    faults: LiveFaultPlan = field(default_factory=LiveFaultPlan)
    host: str = "127.0.0.1"
    # Application spec passed to every node.  None means the classic
    # closed pipeline workload ({"kind": "pipeline", "jobs": jobs}); the
    # load benchmark substitutes an open-loop source here.
    app: dict[str, Any] | None = None
    # Wire format for the mesh links: "binary" (delta clocks, varint
    # framing) or "json" (the legacy text codec, kept for comparison
    # runs and old-trace tooling).
    wire_format: str = "binary"
    # Group-commit window for lazy storage writes (outbox bookkeeping);
    # 0 restores one fsync per mutation.
    storage_flush_window: float = 0.05
    # Cooperative early stop: when set, every node polls this path and
    # ends its run phase as soon as the file exists, making
    # ``run_seconds`` a *cap* rather than a fixed duration.  The service
    # bench uses it to stop shards the moment the closed-loop workload
    # and its audit complete, whatever the machine's speed.
    stop_path: str | None = None
    # Decentralised stability: gossip frontiers and run GC/compaction
    # locally.  Off by default so existing runs keep their storage
    # profile byte-for-byte.
    gossip_stability: bool = False
    gossip_interval: float = 0.5
    enable_gc: bool = False
    compact_history: bool = False
    # Per-process observability: each node builds a live Tracer, the
    # protocol layers report into it (dg.wire_* counters among others),
    # and the counters land in the done report under "obs".  Off by
    # default -- the tracer never feeds back into protocol logic, but
    # the counters cost real work on the hot path.
    obs: bool = False
    # LiveTrace write batching: records per group flush and the age cap.
    trace_buffer_records: int = 64
    trace_buffer_seconds: float = 0.05

    def protocol_config(self) -> dict[str, Any]:
        return {
            "checkpoint_interval": self.checkpoint_interval,
            "flush_interval": self.flush_interval,
            # Remark 1 is what makes real message loss at a sender crash
            # recoverable; the live runtime always enables it.
            "retransmit_on_token": True,
            "gossip_stability": self.gossip_stability,
            "gossip_interval": self.gossip_interval,
            "enable_gc": self.enable_gc,
            "compact_history": self.compact_history,
        }


@dataclass
class LiveRunResult:
    """Everything the run left behind."""

    spec: LiveClusterSpec
    workdir: str
    trace: SimTrace
    done: dict[int, dict[str, Any]]       # pid -> final done report
    kills: list[tuple[int, float]]        # (pid, env-time of SIGKILL)
    wall_seconds: float
    exit_codes: dict[int, int]
    # Crash-point self-kills observed: (pid, point, env-time).  A subset
    # of ``kills``; empty when the armed window was never reached.
    point_kills: list[tuple[int, str, float]] = field(default_factory=list)

    @property
    def total_delivered(self) -> int:
        return sum(
            d["stats"]["app_delivered"] for d in self.done.values()
        )


def _free_ports(n: int, host: str) -> list[int]:
    """Reserve ``n`` distinct free ports (best-effort: bind, read, close)."""
    sockets, ports = [], []
    for _ in range(n):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind((host, 0))
        sockets.append(sock)
        ports.append(sock.getsockname()[1])
    for sock in sockets:
        sock.close()
    return ports


def _await_ports(
    ports: list[int],
    host: str,
    procs: dict[int, subprocess.Popen],
    timeout: float = 30.0,
) -> None:
    """Block until every node's server port accepts connections."""
    deadline = time.time() + timeout
    for pid, port in enumerate(ports):
        while True:
            if procs[pid].poll() is not None:
                raise RuntimeError(
                    f"node p{pid} exited (code {procs[pid].returncode}) "
                    "before binding its port"
                )
            try:
                with socket.create_connection((host, port), timeout=0.25):
                    break
            except OSError:
                if time.time() > deadline:
                    raise RuntimeError(
                        f"node p{pid} never bound port {port}"
                    ) from None
                time.sleep(0.02)


def _publish_epoch(path: str, epoch: float) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump({"epoch": epoch}, fh)
    os.replace(tmp, path)


def _spawn(config_path: str, log_path: str) -> subprocess.Popen:
    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        src_root + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src_root
    )
    log = open(log_path, "a", encoding="utf-8")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.live.node", "--config", config_path],
        stdout=log,
        stderr=subprocess.STDOUT,
        env=env,
        start_new_session=True,
    )


def run_cluster(spec: LiveClusterSpec, workdir: str) -> LiveRunResult:
    """Run one live cluster to completion and collect its artifacts."""
    spec.faults.validate(spec.n)
    os.makedirs(workdir, exist_ok=True)
    data_dir = os.path.join(workdir, "data")
    os.makedirs(data_dir, exist_ok=True)
    ports = _free_ports(spec.n, spec.host)
    epoch_path = os.path.join(workdir, "epoch.json")
    if os.path.exists(epoch_path):
        os.remove(epoch_path)   # stale epoch from a previous run

    point_plans: dict[int, LiveCrashPointPlan] = {}
    for plan in spec.crash_points:
        if plan.pid in point_plans:
            raise ValueError(f"multiple crash-point plans for pid {plan.pid}")
        point_plans[plan.pid] = plan

    config_paths, trace_paths, done_paths, log_paths = [], [], [], []
    armed_config_paths: dict[int, str] = {}
    for pid in range(spec.n):
        cfg = {
            "pid": pid,
            "n": spec.n,
            "host": spec.host,
            "ports": ports,
            "epoch_path": epoch_path,
            "run_until": spec.run_seconds,
            "stop_path": spec.stop_path,
            "linger": spec.linger,
            "protocol": spec.protocol,
            "app": (
                spec.app
                if spec.app is not None
                else {"kind": "pipeline", "jobs": spec.jobs}
            ),
            "config": spec.protocol_config(),
            "wire_format": spec.wire_format,
            "storage_flush_window": spec.storage_flush_window,
            "obs": spec.obs,
            "trace_buffer_records": spec.trace_buffer_records,
            "trace_buffer_seconds": spec.trace_buffer_seconds,
            # Booting an n-node mesh serialises ~n interpreter starts on
            # small machines; give the barrier headroom that grows with
            # the cluster instead of a one-size 30 s.
            "epoch_timeout": 30.0 + spec.n,
            "faults": spec.faults.for_node(pid, spec.n),
            "data_dir": data_dir,
            "trace_path": os.path.join(workdir, f"trace_p{pid}.jsonl"),
            "done_path": os.path.join(workdir, f"done_p{pid}.json"),
        }
        path = os.path.join(workdir, f"config_p{pid}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(cfg, fh, indent=2)
        config_paths.append(path)
        if pid in point_plans:
            # The armed variant is a separate file so the clean config is
            # always available for the post-self-kill respawn: the point
            # must fire exactly once per plan, never on the recovery boot.
            armed = dict(cfg, crash_point=point_plans[pid].point)
            armed_path = os.path.join(workdir, f"config_p{pid}_armed.json")
            with open(armed_path, "w", encoding="utf-8") as fh:
                json.dump(armed, fh, indent=2)
            armed_config_paths[pid] = armed_path
        trace_paths.append(cfg["trace_path"])
        done_paths.append(cfg["done_path"])
        log_paths.append(os.path.join(workdir, f"node_p{pid}.log"))

    start_wall = time.time()
    # Plans with ``at=None`` boot armed; ``at``-based plans boot clean and
    # are re-armed on the respawn after the scheduled SIGKILL (the only
    # way to land inside a restart-transition window).  Arming is safe
    # before the epoch barrier: crash points fire only on persists made
    # inside an intent-carrying transition, and the first of those is
    # checkpoint 0, strictly after the epoch wait.
    procs = {
        pid: _spawn(
            armed_config_paths[pid]
            if pid in point_plans and point_plans[pid].at is None
            else config_paths[pid],
            log_paths[pid],
        )
        for pid in range(spec.n)
    }

    # Readiness barrier: every node has durably recorded its boot and
    # bound its port before env-time starts, so the crash schedule below
    # can never land on a half-started interpreter.  Timeout scales with
    # n for the same reason as the nodes' epoch_timeout.
    _await_ports(ports, spec.host, procs, timeout=30.0 + spec.n)
    # The epoch is *now*, not a point in the future: nodes observe the
    # file strictly after this instant, so env-time is non-negative on
    # every process.  (The old ``time.time() + 0.1`` pre-dated publish by
    # design and made every early event -- including job outputs -- carry
    # a negative timestamp.)  ``epoch_mono`` is the same instant on the
    # monotonic clock; all supervisor-side scheduling below uses it so a
    # wall-clock step cannot shift kill times.
    epoch = time.time()
    epoch_mono = time.monotonic()
    _publish_epoch(epoch_path, epoch)

    def env_now() -> float:
        return time.monotonic() - epoch_mono

    # Supervisor-side trace: the CRASH events (a SIGKILLed process cannot
    # record its own death, and an armed node that SIGKILLs *itself*
    # cannot either -- the supervisor observes the -SIGKILL exit and
    # records it here).
    sup_trace_path = os.path.join(workdir, "trace_supervisor.jsonl")
    kills: list[tuple[int, float]] = []
    point_kills: list[tuple[int, str, float]] = []
    crash_counts: dict[int, int] = {}
    with open(sup_trace_path, "w", encoding="utf-8") as sup_trace:

        def record_crash(pid: int, kill_time: float) -> None:
            crash_counts[pid] = crash_counts.get(pid, 0) + 1
            sup_trace.write(
                json.dumps(
                    {
                        "t": kill_time,
                        "kind": EventKind.CRASH.value,
                        "pid": pid,
                        "fields": {"count": crash_counts[pid]},
                    }
                )
                + "\n"
            )
            sup_trace.flush()

        # One loop drives both failure modes: scheduled SIGKILLs fire at
        # their planned env-times while armed nodes are concurrently
        # watched for self-kills (a boot-armed point can fire during any
        # sleep, so a purely sequential schedule would sit on its corpse
        # for the rest of the run).
        schedule: list[tuple[str, float, Any]] = sorted(
            [("kill", c.at, c) for c in spec.crashes]
            + [
                ("arm", p.at, p)
                for p in spec.crash_points
                if p.at is not None
            ],
            key=lambda item: item[1],
        )
        watching: dict[int, LiveCrashPointPlan] = {
            p.pid: p for p in spec.crash_points if p.at is None
        }
        respawns: dict[int, tuple[float, str]] = {}   # pid -> (when, config)
        watch_until = spec.run_seconds + spec.linger
        while schedule or watching or respawns:
            now = env_now()
            if now > watch_until:
                # The run is over; unfired points stay unfired (recorded
                # as an empty point_kills entry set), but every pending
                # respawn still happens so the final wait sees live
                # processes, not supervisor-orphaned corpses.
                schedule.clear()
                watching.clear()
                for pid, (_, cfg_path) in respawns.items():
                    procs[pid] = _spawn(cfg_path, log_paths[pid])
                respawns.clear()
                break
            for pid in [p for p, (due, _) in respawns.items() if due <= now]:
                _, cfg_path = respawns.pop(pid)
                procs[pid] = _spawn(cfg_path, log_paths[pid])
            while schedule and schedule[0][1] <= now:
                mode, _, plan = schedule.pop(0)
                victim = procs[plan.pid]
                victim.kill()   # SIGKILL
                victim.wait()
                kill_time = env_now()
                kills.append((plan.pid, kill_time))
                record_crash(plan.pid, kill_time)
                if mode == "arm":
                    # Respawn armed; the self-kill watcher takes over
                    # once the armed incarnation is actually running.
                    respawns[plan.pid] = (
                        kill_time + plan.downtime,
                        armed_config_paths[plan.pid],
                    )
                    watching[plan.pid] = plan
                else:
                    respawns[plan.pid] = (
                        kill_time + plan.downtime,
                        config_paths[plan.pid],
                    )
            for pid in list(watching):
                if pid in respawns:
                    continue   # armed incarnation not spawned yet
                code = procs[pid].poll()
                if code is None:
                    continue
                plan = watching.pop(pid)
                if code == -signal.SIGKILL:
                    kill_time = env_now()
                    kills.append((pid, kill_time))
                    point_kills.append((pid, plan.point, kill_time))
                    record_crash(pid, kill_time)
                    respawns[pid] = (
                        kill_time + plan.downtime, config_paths[pid]
                    )
                # Any other exit: the node finished without reaching the
                # window; nothing to heal, nothing to respawn.
            time.sleep(0.02)

    # Wait for the nodes to finish (they self-terminate at the deadline).
    hard_stop = spec.run_seconds + spec.linger + 10.0
    exit_codes: dict[int, int] = {}
    for pid, proc in procs.items():
        remaining = max(0.1, hard_stop - env_now())
        try:
            exit_codes[pid] = proc.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            exit_codes[pid] = -signal.SIGKILL
    wall_seconds = time.time() - start_wall

    done: dict[int, dict[str, Any]] = {}
    for pid, path in enumerate(done_paths):
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                done[pid] = json.load(fh)

    trace = merge_traces(
        [p for p in trace_paths if os.path.exists(p)] + [sup_trace_path]
    )
    return LiveRunResult(
        spec=spec,
        workdir=workdir,
        trace=trace,
        done=done,
        kills=kills,
        wall_seconds=wall_seconds,
        exit_codes=exit_codes,
        point_kills=point_kills,
    )
