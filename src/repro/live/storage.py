"""File-backed stable storage for live processes.

:class:`FileStableStorage` keeps the exact semantics of the in-memory
:class:`~repro.storage.stable.StableStorage` -- including the *volatile*
message-log buffer, which is deliberately **not** persisted (a SIGKILL
must lose it, exactly like the paper's failure model) -- and writes the
durable remainder to one pickle file after every stable-storage mutation.

Writes go through a temp file and :func:`os.replace`, so a crash in the
middle of a write leaves the previous durable image intact; there is no
window in which the file is missing or half-written.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable

from repro.storage.checkpoint import CheckpointStore
from repro.storage.log import MessageLog
from repro.storage.stable import StableStorage

_FORMAT_VERSION = 1


class _NotifyingCheckpointStore(CheckpointStore):
    """CheckpointStore that reports every durable mutation."""

    def __init__(self, on_mutate: Callable[[], None]) -> None:
        super().__init__()
        self._on_mutate = on_mutate

    def take(self, *args: Any, **kwargs: Any):
        ckpt = super().take(*args, **kwargs)
        self._on_mutate()
        return ckpt

    def discard_after(self, ckpt) -> int:
        dropped = super().discard_after(ckpt)
        self._on_mutate()
        return dropped

    def garbage_collect_before(self, ckpt_id: int) -> int:
        dropped = super().garbage_collect_before(ckpt_id)
        if dropped:
            self._on_mutate()
        return dropped


class _NotifyingMessageLog(MessageLog):
    """MessageLog that reports mutations of its *stable* part.

    ``append`` touches only the volatile buffer and therefore does not
    persist -- that is the point: unflushed messages die with the process.
    """

    def __init__(self, on_mutate: Callable[[], None]) -> None:
        super().__init__()
        self._on_mutate = on_mutate

    def flush(self) -> int:
        moved = super().flush()
        if moved:
            self._on_mutate()
        return moved

    def truncate(self, keep: int) -> int:
        dropped = super().truncate(keep)
        if dropped:
            self._on_mutate()
        return dropped

    def discard_prefix(self, before: int) -> int:
        dropped = super().discard_prefix(before)
        if dropped:
            self._on_mutate()
        return dropped


class FileStableStorage(StableStorage):
    """Stable storage persisted to ``path``; reloads itself on restart."""

    def __init__(self, pid: int, path: str) -> None:
        super().__init__(pid)
        self.path = path
        self.persist_count = 0
        self._loading = True
        self.checkpoints = _NotifyingCheckpointStore(self._persist)
        self.log = _NotifyingMessageLog(self._persist)
        if os.path.exists(path):
            self._load()
        self._loading = False

    # ------------------------------------------------------------------
    # Mutators that StableStorage itself defines
    # ------------------------------------------------------------------
    def log_token(self, token: Any) -> None:
        super().log_token(token)
        self._persist()

    def put(self, key: str, value: Any) -> None:
        super().put(key, value)
        self._persist()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _durable_state(self) -> dict[str, Any]:
        return {
            "version": _FORMAT_VERSION,
            "pid": self.pid,
            "checkpoints": self.checkpoints._checkpoints,
            "ckpt_next_id": self.checkpoints._next_id,
            "ckpt_taken": self.checkpoints.taken_count,
            "ckpt_discarded": self.checkpoints.discarded_count,
            "log_stable": self.log._stable,
            "log_gc_offset": self.log._gc_offset,
            "log_flush_count": self.log.flush_count,
            "log_gc_count": self.log.gc_count,
            "tokens": self._tokens,
            "kv": self._kv,
            "sync_writes": self.sync_writes,
        }

    def _persist(self) -> None:
        if self._loading:
            return
        tmp = f"{self.path}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(self._durable_state(), fh, protocol=4)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self.persist_count += 1

    def _load(self) -> None:
        with open(self.path, "rb") as fh:
            state = pickle.load(fh)
        if state.get("version") != _FORMAT_VERSION:
            raise RuntimeError(
                f"stable-storage format {state.get('version')!r} "
                f"not supported (expected {_FORMAT_VERSION})"
            )
        if state["pid"] != self.pid:
            raise RuntimeError(
                f"storage file {self.path} belongs to pid {state['pid']}, "
                f"not {self.pid}"
            )
        self.checkpoints._checkpoints = state["checkpoints"]
        self.checkpoints._next_id = state["ckpt_next_id"]
        self.checkpoints.taken_count = state["ckpt_taken"]
        self.checkpoints.discarded_count = state["ckpt_discarded"]
        self.log._stable = state["log_stable"]
        self.log._gc_offset = state["log_gc_offset"]
        self.log.flush_count = state["log_flush_count"]
        self.log.gc_count = state["log_gc_count"]
        self._tokens = state["tokens"]
        self._kv = state["kv"]
        self.sync_writes = state["sync_writes"]
