"""File-backed stable storage for live processes, with group commit.

:class:`FileStableStorage` keeps the exact semantics of the in-memory
:class:`~repro.storage.stable.StableStorage` -- including the *volatile*
message-log buffer, which is deliberately **not** persisted (a SIGKILL
must lose it, exactly like the paper's failure model) -- and writes the
durable remainder to one pickle file.

Writes come in two durability classes:

- **Synchronous barriers** -- token logging, ``put``, and every
  checkpoint/message-log mutation -- persist (fsync) immediately, exactly
  as before.  A barrier writes the *whole* durable image, so it also
  hardens any lazy writes still pending.
- **Lazy writes** (:meth:`put_lazy`, used for the transport outbox) are
  batched: the file is rewritten at most once per ``flush_window``
  seconds.  This is the group commit that removes the two
  fsyncs-per-message the outbox used to cost.  A SIGKILL inside the
  window loses the tail of lazy writes -- which is sound, because a
  message whose *sending state* is durable was hardened by the same
  barrier (log flush / checkpoint) that made the state durable, and a
  message whose sending state is volatile is condemned by the sender's
  restart token: receivers discard it as obsolete, so the loss equals
  never having sent it.

``flush_window=0`` (the default for direct construction) keeps the old
every-mutation-fsyncs behaviour; the live node enables the window.

Writes go through a temp file and :func:`os.replace`, so a crash in the
middle of a write leaves the previous durable image intact; there is no
window in which the file is missing or half-written.
"""

from __future__ import annotations

import asyncio
import os
import pickle
from typing import Any, Callable

from repro.storage.checkpoint import CheckpointStore
from repro.storage.log import MessageLog
from repro.storage.stable import StableStorage

# Version 2: the transport outbox holds NetworkMessage objects (encoded
# per connection at pump time), not pre-encoded JSON bytes.
# Version 3: write-ahead intent journal (active record, audit tail, id
# counter) plus the observability counters that used to reset across
# restarts (lazy_writes, window_flushes, token_log_dedups).  Version-2
# images load fine: the new keys default.
_FORMAT_VERSION = 3
_ACCEPTED_VERSIONS = (2, 3)


class _NotifyingCheckpointStore(CheckpointStore):
    """CheckpointStore that reports every durable mutation."""

    def __init__(self, on_mutate: Callable[[], None]) -> None:
        super().__init__()
        self._on_mutate = on_mutate

    def take(self, *args: Any, **kwargs: Any):
        ckpt = super().take(*args, **kwargs)
        self._on_mutate()
        return ckpt

    def discard_after(self, ckpt) -> int:
        dropped = super().discard_after(ckpt)
        self._on_mutate()
        return dropped

    def garbage_collect_before(self, ckpt_id: int) -> int:
        dropped = super().garbage_collect_before(ckpt_id)
        if dropped:
            self._on_mutate()
        return dropped


class _NotifyingMessageLog(MessageLog):
    """MessageLog that reports mutations of its *stable* part.

    ``append`` touches only the volatile buffer and therefore does not
    persist -- that is the point: unflushed messages die with the process.
    """

    def __init__(self, on_mutate: Callable[[], None]) -> None:
        super().__init__()
        self._on_mutate = on_mutate

    def flush(self) -> int:
        moved = super().flush()
        if moved:
            self._on_mutate()
        return moved

    def truncate(self, keep: int) -> int:
        dropped = super().truncate(keep)
        if dropped:
            self._on_mutate()
        return dropped

    def discard_prefix(self, before: int) -> int:
        dropped = super().discard_prefix(before)
        if dropped:
            self._on_mutate()
        return dropped


class FileStableStorage(StableStorage):
    """Stable storage persisted to ``path``; reloads itself on restart."""

    # Armed crash points fire from _persist, right after the atomic file
    # write, so the on-disk image at death is exactly the partial state
    # the point names (including the live-only ":committed" variants).
    _fires_on_persist = True

    def __init__(
        self, pid: int, path: str, *, flush_window: float = 0.0
    ) -> None:
        super().__init__(pid)
        self.path = path
        self.flush_window = flush_window
        self.persist_count = 0          # fsync'd file writes
        self.window_flushes = 0         # persists triggered by the timer
        self.dir_fsyncs = 0             # directory fsyncs after os.replace
        # Optional fault injector (NodeFaults.disk_fault): called at the
        # top of every persist with window=True/False.  It may stall, or
        # raise for window-triggered flushes -- which must then leave the
        # dirty flag set and the flush window re-armed (the retry path).
        self.fault_hook: Callable[..., None] | None = None
        # Optional flush-before-barrier hook (LiveTrace.flush): called
        # before every durable image write.  Anything that must be on
        # disk no later than this storage barrier -- the batched trace
        # buffer -- hangs off this hook.  Must not raise on the happy
        # path; if it does, the persist is aborted and retried exactly
        # like a fault_hook failure.
        self.pre_persist_hook: Callable[[], None] | None = None
        self._dirty = False
        self._flush_handle: asyncio.TimerHandle | None = None
        self._loading = True
        self.checkpoints = _NotifyingCheckpointStore(self._persist)
        self.log = _NotifyingMessageLog(self._persist)
        if os.path.exists(path):
            self._load()
        self._loading = False

    # ------------------------------------------------------------------
    # Mutators that StableStorage itself defines
    # ------------------------------------------------------------------
    def log_token(self, token: Any, *, dedupe_key: Any = None) -> bool:
        appended = super().log_token(token, dedupe_key=dedupe_key)
        if appended:
            self._persist()
        return appended

    def put(self, key: str, value: Any) -> None:
        super().put(key, value)
        self._persist()

    def put_lazy(self, key: str, value: Any) -> None:
        super().put_lazy(key, value)
        if self._loading:
            return
        if self.flush_window <= 0:
            self._persist()
            return
        self._dirty = True
        if self._flush_handle is not None:
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            # No event loop (synchronous tests): nothing would ever fire
            # the window, so behave synchronously.
            self._persist()
            return
        self._flush_handle = loop.call_later(
            self.flush_window, self._window_fire
        )

    def mark_lazy_dirty(self) -> None:
        """Provider-backed lazy write: O(1) dirty bit, snapshot deferred.

        Unlike the in-memory base (which materialises immediately), the
        provider is invoked inside :meth:`_persist` -- once per actual
        file write, not once per mutation.  Durability class is identical
        to :meth:`put_lazy`: the next barrier or flush window hardens it.
        """
        self.lazy_writes += 1
        if self._loading:
            return
        if self.flush_window <= 0:
            self._persist()
            return
        self._dirty = True
        if self._flush_handle is not None:
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            self._persist()
            return
        self._flush_handle = loop.call_later(
            self.flush_window, self._window_fire
        )

    def _window_fire(self) -> None:
        self._flush_handle = None
        if self._dirty:
            self.window_flushes += 1
            self._persist(window=True)

    def sync(self) -> None:
        """Force any pending lazy writes to disk now."""
        if self._dirty:
            self._persist()

    @property
    def pending_lazy(self) -> bool:
        """Are there lazy writes not yet on disk?  (Tests/shutdown.)"""
        return self._dirty

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _durable_state(self) -> dict[str, Any]:
        # Snapshot provider-backed values now: one call per file write.
        self._materialize_providers()
        return {
            "version": _FORMAT_VERSION,
            "pid": self.pid,
            "checkpoints": self.checkpoints._checkpoints,
            "ckpt_next_id": self.checkpoints._next_id,
            "ckpt_taken": self.checkpoints.taken_count,
            "ckpt_discarded": self.checkpoints.discarded_count,
            "log_stable": self.log._stable,
            "log_gc_offset": self.log._gc_offset,
            "log_flush_count": self.log.flush_count,
            "log_gc_count": self.log.gc_count,
            "tokens": self._tokens,
            "token_keys": self._token_keys,
            "kv": self._kv,
            "sync_writes": self.sync_writes,
            "lazy_writes": self.lazy_writes,
            "window_flushes": self.window_flushes,
            "token_log_dedups": self.token_log_dedups,
            "intent_active": self._active_intent,
            "intent_audit": self._intent_audit,
            "intent_next_id": self._intent_next_id,
        }

    def _persist(self, *, window: bool = False) -> None:
        if self._loading:
            return
        # A barrier hardens everything, pending lazy writes included --
        # but only claim the pending window once the write has actually
        # landed: if pickle/fsync/replace raises (disk full, transient
        # I/O error) the durable image is still the old one, and marking
        # the lazy tail clean here would silently drop it forever.
        was_dirty = self._dirty
        self._dirty = False
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        tmp = f"{self.path}.tmp"
        try:
            if self.pre_persist_hook is not None:
                self.pre_persist_hook()
            if self.fault_hook is not None:
                self.fault_hook(window=window)
            with open(tmp, "wb") as fh:
                pickle.dump(self._durable_state(), fh, protocol=4)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except Exception:
            self._dirty = True
            if was_dirty:
                self._reschedule_window()
            raise
        self._fsync_dir()
        self.persist_count += 1
        self._check_crash_point()

    def _reschedule_window(self) -> None:
        """Re-arm the flush window so a failed persist is retried."""
        if self.flush_window <= 0 or self._flush_handle is not None:
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return
        self._flush_handle = loop.call_later(
            self.flush_window, self._window_fire
        )

    def _fsync_dir(self) -> None:
        """Make the rename itself durable.

        ``os.replace`` swaps the directory entry, but that entry only
        survives a *host* crash once the directory is fsynced; without
        this the previous image can resurrect even though persist_count
        was already bumped.  Platforms that cannot open or fsync a
        directory (e.g. Windows) are skipped.
        """
        dirname = os.path.dirname(self.path) or "."
        try:
            dirfd = os.open(dirname, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
        except OSError:
            return
        try:
            os.fsync(dirfd)
            self.dir_fsyncs += 1
        except OSError:
            pass
        finally:
            os.close(dirfd)

    def _check_crash_point(self) -> None:
        """Fire an armed crash point matching the image just written."""
        pending, self._commit_pending = self._commit_pending, None
        if not self._armed_crash_points:
            return
        active = self._active_intent
        if active is not None:
            self._fire_crash_point(f"{active.kind}:{active.step}")
        elif pending is not None:
            self._fire_crash_point(f"{pending.kind}:committed")

    def _load(self) -> None:
        with open(self.path, "rb") as fh:
            state = pickle.load(fh)
        if state.get("version") not in _ACCEPTED_VERSIONS:
            raise RuntimeError(
                f"stable-storage format {state.get('version')!r} "
                f"not supported (expected {_FORMAT_VERSION})"
            )
        if state["pid"] != self.pid:
            raise RuntimeError(
                f"storage file {self.path} belongs to pid {state['pid']}, "
                f"not {self.pid}"
            )
        self.checkpoints._checkpoints = state["checkpoints"]
        self.checkpoints._next_id = state["ckpt_next_id"]
        self.checkpoints.taken_count = state["ckpt_taken"]
        self.checkpoints.discarded_count = state["ckpt_discarded"]
        self.log._stable = state["log_stable"]
        self.log._gc_offset = state["log_gc_offset"]
        self.log.flush_count = state["log_flush_count"]
        self.log.gc_count = state["log_gc_count"]
        self._tokens = state["tokens"]
        self._token_keys = state["token_keys"]
        self._kv = state["kv"]
        self.sync_writes = state["sync_writes"]
        self.lazy_writes = state.get("lazy_writes", 0)
        self.window_flushes = state.get("window_flushes", 0)
        self.token_log_dedups = state.get("token_log_dedups", 0)
        self._active_intent = state.get("intent_active")
        self._intent_audit = state.get("intent_audit", [])
        self._intent_next_id = state.get("intent_next_id", 0)
