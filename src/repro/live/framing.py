"""Length-prefixed framing for the live TCP links.

Each frame is a 4-byte big-endian length followed by that many bytes of
payload -- binary wire frames (:mod:`repro.live.wire`, first byte 0xB5)
or legacy UTF-8 JSON (:mod:`repro.live.codec`, first byte ``{``).  The
cap rejects corrupt prefixes before they turn into a multi-gigabyte read.
"""

from __future__ import annotations

import asyncio
import struct

#: Refuse frames larger than this (a live token or envelope is ~KBs).
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FramingError(ConnectionError):
    """Raised for oversized or truncated frames."""


def frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its length."""
    if len(payload) > MAX_FRAME:
        raise FramingError(f"frame of {len(payload)} bytes exceeds cap")
    return _HEADER.pack(len(payload)) + payload


async def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    writer.write(frame(payload))
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FramingError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FramingError(f"incoming frame of {length} bytes exceeds cap")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FramingError("connection closed mid-frame") from exc
