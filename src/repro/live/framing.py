"""Length-prefixed, checksummed framing for the live TCP links.

Each frame is an 8-byte big-endian header -- 4 bytes of payload length
followed by 4 bytes of CRC32 over the payload -- and then the payload
itself: binary wire frames (:mod:`repro.live.wire`, first byte 0xB5) or
legacy UTF-8 JSON (:mod:`repro.live.codec`, first byte ``{``).

The length cap rejects corrupt prefixes before they turn into a
multi-gigabyte read; the CRC rejects everything subtler.  TCP's own
checksum is 16 bits and famously misses real corruption, and a bit flip
inside a binary frame can decode *successfully* into a wrong value --
which the protocol would then treat as real application state.  With the
CRC, any corrupted frame (header or payload) surfaces as a
:class:`FramingError`; the receiver drops the connection and the
sender's outbox retransmits everything unacknowledged on redial, so
corruption degrades into the crash/reconnect case the recovery protocol
already handles.
"""

from __future__ import annotations

import asyncio
import struct
import zlib

#: Refuse frames larger than this (a live token or envelope is ~KBs).
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">II")

#: Framing bytes added per frame on the wire (length + CRC32 header);
#: byte accounting in the transport uses this, not a literal.
OVERHEAD = _HEADER.size


class FramingError(ConnectionError):
    """Raised for oversized, truncated, or corrupt frames."""


def frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its length and CRC32."""
    if len(payload) > MAX_FRAME:
        raise FramingError(f"frame of {len(payload)} bytes exceeds cap")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _check_crc(payload: bytes, crc: int) -> bytes:
    if zlib.crc32(payload) != crc:
        raise FramingError(
            f"frame of {len(payload)} bytes failed its CRC check"
        )
    return payload


async def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    writer.write(frame(payload))
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FramingError("connection closed mid-header") from exc
    length, crc = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FramingError(f"incoming frame of {length} bytes exceeds cap")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FramingError("connection closed mid-frame") from exc
    return _check_crc(payload, crc)


class BufferedFrameReader:
    """Batch frame reader: one ``read()`` syscall yields many frames.

    :func:`read_frame` costs two ``readexactly`` awaits per frame, which
    under load means two scheduler round-trips per message.  This reader
    pulls whatever the socket has (up to ``chunk``) into one buffer and
    slices out every complete frame, so a burst of small frames costs one
    await.  Used by both transport receive loops; the framing on the wire
    is unchanged.
    """

    __slots__ = ("_reader", "_buf", "_chunk")

    def __init__(
        self, reader: asyncio.StreamReader, *, chunk: int = 1 << 16
    ) -> None:
        self._reader = reader
        self._buf = bytearray()
        self._chunk = chunk

    def _split(self) -> list[bytes]:
        """Slice every complete frame out of the buffer."""
        frames: list[bytes] = []
        buf = self._buf
        pos = 0
        available = len(buf)
        while available - pos >= _HEADER.size:
            length, crc = _HEADER.unpack_from(buf, pos)
            if length > MAX_FRAME:
                raise FramingError(
                    f"incoming frame of {length} bytes exceeds cap"
                )
            end = pos + _HEADER.size + length
            if end > available:
                break
            frames.append(
                _check_crc(bytes(buf[pos + _HEADER.size:end]), crc)
            )
            pos = end
        if pos:
            del buf[:pos]
        return frames

    async def read_batch(self) -> list[bytes] | None:
        """Every complete frame currently available (at least one), or
        ``None`` on clean EOF at a frame boundary.  Raises
        :class:`FramingError` on EOF mid-frame."""
        while True:
            frames = self._split()
            if frames:
                return frames
            data = await self._reader.read(self._chunk)
            if not data:
                if self._buf:
                    raise FramingError("connection closed mid-frame")
                return None
            self._buf += data
