"""Length-prefixed framing for the live TCP links.

Each frame is a 4-byte big-endian length followed by that many bytes of
payload -- binary wire frames (:mod:`repro.live.wire`, first byte 0xB5)
or legacy UTF-8 JSON (:mod:`repro.live.codec`, first byte ``{``).  The
cap rejects corrupt prefixes before they turn into a multi-gigabyte read.
"""

from __future__ import annotations

import asyncio
import struct

#: Refuse frames larger than this (a live token or envelope is ~KBs).
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FramingError(ConnectionError):
    """Raised for oversized or truncated frames."""


def frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its length."""
    if len(payload) > MAX_FRAME:
        raise FramingError(f"frame of {len(payload)} bytes exceeds cap")
    return _HEADER.pack(len(payload)) + payload


async def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    writer.write(frame(payload))
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FramingError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FramingError(f"incoming frame of {length} bytes exceeds cap")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FramingError("connection closed mid-frame") from exc


class BufferedFrameReader:
    """Batch frame reader: one ``read()`` syscall yields many frames.

    :func:`read_frame` costs two ``readexactly`` awaits per frame, which
    under load means two scheduler round-trips per message.  This reader
    pulls whatever the socket has (up to ``chunk``) into one buffer and
    slices out every complete frame, so a burst of small frames costs one
    await.  Used by both transport receive loops; the framing on the wire
    is unchanged.
    """

    __slots__ = ("_reader", "_buf", "_chunk")

    def __init__(
        self, reader: asyncio.StreamReader, *, chunk: int = 1 << 16
    ) -> None:
        self._reader = reader
        self._buf = bytearray()
        self._chunk = chunk

    def _split(self) -> list[bytes]:
        """Slice every complete frame out of the buffer."""
        frames: list[bytes] = []
        buf = self._buf
        pos = 0
        available = len(buf)
        while available - pos >= _HEADER.size:
            (length,) = _HEADER.unpack_from(buf, pos)
            if length > MAX_FRAME:
                raise FramingError(
                    f"incoming frame of {length} bytes exceeds cap"
                )
            end = pos + _HEADER.size + length
            if end > available:
                break
            frames.append(bytes(buf[pos + _HEADER.size:end]))
            pos = end
        if pos:
            del buf[:pos]
        return frames

    async def read_batch(self) -> list[bytes] | None:
        """Every complete frame currently available (at least one), or
        ``None`` on clean EOF at a frame boundary.  Raises
        :class:`FramingError` on EOF mid-frame."""
        while True:
            frames = self._split()
            if frames:
                return frames
            data = await self._reader.read(self._chunk)
            if not data:
                if self._buf:
                    raise FramingError("connection closed mid-frame")
                return None
            self._buf += data
