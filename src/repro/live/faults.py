"""Live fault injection: partitions, gray links, disk faults, corruption.

The simulator has had a rich failure model since PR 2 (``sim/failures``:
crash plans, partition plans, non-FIFO delivery); the live runtime only
ever injected SIGKILL.  This module closes that gap with a *plan
vocabulary* mirroring the simulator's -- plain, JSON-serialisable data
that rides in the supervisor's :class:`~repro.live.supervisor.LiveClusterSpec`
and round-trips through the stress harness's reproducer files, so ddmin
shrinking works on live fault schedules exactly as it does on simulated
ones.

Fault classes (all windows are ``[at, until)`` in cluster env-time):

- :class:`LivePartitionPlan` -- symmetric partition: every link crossing
  the group boundary is black-holed in both directions until the heal.
- :class:`LiveLinkDropPlan` -- *one-way* (asymmetric) black-hole on a
  single directed link: ``src`` cannot reach ``dst``; the reverse
  direction keeps flowing.
- :class:`LiveGrayLinkPlan` -- a gray link: fixed delay plus jitter and
  an optional bandwidth throttle on the write path.
- :class:`LiveDiskFaultPlan` -- stable-storage faults: ``fsync`` that
  fails (group-commit window flushes raise and must retry -- the PR 7
  dirty-flag fix under real injection) or stalls.
- :class:`LiveCorruptFramePlan` -- seeded bit-flips / truncations applied
  to outgoing data frames, proving the CRC framing and
  :class:`~repro.live.framing.BufferedFrameReader` drop-and-redial
  instead of crashing or delivering garbage.

Injection model: the supervisor compiles the unified
:class:`LiveFaultPlan` into a per-node schedule carried in each node's
config file, and every node executes its slice against the shared epoch
clock (the same clock the supervisor schedules SIGKILLs on).  Activation
is evaluated at use time -- "is env-now inside the window?" -- rather
than via control messages, because a control channel would itself be
subject to the partitions being injected.  The checks live inside
:class:`~repro.live.transport.MeshTransport` (dial, pump, write path)
and :class:`~repro.live.storage.FileStableStorage` (persist), so the
redial / outbox / ack / group-commit machinery experiences each fault
exactly as it would a real network or disk.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

#: Disk-fault modes: ``fail`` raises from the group-commit window flush
#: (sync barriers stay correct; the retry path must heal), ``stall``
#: delays every persist by ``stall`` seconds.
DISK_FAULT_MODES = ("fail", "stall")

#: Frame-corruption modes.  ``mixed`` draws one of the others per frame.
CORRUPT_MODES = ("bitflip", "truncate", "mixed")


@dataclass(frozen=True)
class LivePartitionPlan:
    """Symmetric partition of the cluster into ``groups`` for
    ``[at, heal_at)``; links inside a group are untouched."""

    at: float
    groups: tuple[tuple[int, ...], ...]
    heal_at: float

    def __post_init__(self) -> None:
        if self.heal_at <= self.at or self.at < 0:
            raise ValueError(f"bad partition window {self!r}")
        seen: set[int] = set()
        for group in self.groups:
            for pid in group:
                if pid in seen:
                    raise ValueError(
                        f"pid {pid} appears in two partition groups"
                    )
                seen.add(pid)


@dataclass(frozen=True)
class LiveLinkDropPlan:
    """One-way black-hole: ``src`` cannot send to ``dst`` in
    ``[at, until)``.  The reverse link is unaffected (asymmetric)."""

    src: int
    dst: int
    at: float
    until: float

    def __post_init__(self) -> None:
        if self.until <= self.at or self.at < 0 or self.src == self.dst:
            raise ValueError(f"bad link-drop window {self!r}")


@dataclass(frozen=True)
class LiveGrayLinkPlan:
    """Gray link ``src -> dst`` for ``[at, until)``: each write batch is
    delayed by ``delay`` plus ``uniform(0, jitter)`` seconds, and
    ``bandwidth`` (bytes/second), when set, throttles the batch."""

    src: int
    dst: int
    at: float
    until: float
    delay: float = 0.0
    jitter: float = 0.0
    bandwidth: float | None = None

    def __post_init__(self) -> None:
        if self.until <= self.at or self.at < 0 or self.src == self.dst:
            raise ValueError(f"bad gray-link window {self!r}")
        if self.delay < 0 or self.jitter < 0:
            raise ValueError(f"negative delay/jitter in {self!r}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError(f"non-positive bandwidth in {self!r}")


@dataclass(frozen=True)
class LiveDiskFaultPlan:
    """Stable-storage fault on ``pid`` for ``[at, until)``.

    ``fail``: group-commit window flushes raise ``OSError`` (the dirty
    flag must survive and the window must re-arm -- the PR 7 fix).
    ``stall``: every persist sleeps ``stall`` seconds before writing.
    """

    pid: int
    at: float
    until: float
    mode: str = "fail"
    stall: float = 0.2

    def __post_init__(self) -> None:
        if self.until <= self.at or self.at < 0:
            raise ValueError(f"bad disk-fault window {self!r}")
        if self.mode not in DISK_FAULT_MODES:
            raise ValueError(f"unknown disk-fault mode {self.mode!r}")
        if self.stall < 0:
            raise ValueError(f"negative stall in {self!r}")


@dataclass(frozen=True)
class LiveCorruptFramePlan:
    """Corrupt outgoing data frames on link ``src -> dst`` during
    ``[at, until)``: each frame is corrupted with probability ``rate``
    using a stream seeded by ``seed`` (and the link), so a given plan
    corrupts reproducibly for a fixed traffic pattern."""

    src: int
    dst: int
    at: float
    until: float
    rate: float = 0.05
    seed: int = 0
    mode: str = "bitflip"

    def __post_init__(self) -> None:
        if self.until <= self.at or self.at < 0 or self.src == self.dst:
            raise ValueError(f"bad corrupt-frame window {self!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"corruption rate {self.rate} outside [0, 1]")
        if self.mode not in CORRUPT_MODES:
            raise ValueError(f"unknown corruption mode {self.mode!r}")


@dataclass(frozen=True)
class LiveFaultPlan:
    """The unified live fault schedule -- everything but the SIGKILLs
    (those stay in :class:`~repro.live.supervisor.LiveCrashPlan`)."""

    partitions: tuple[LivePartitionPlan, ...] = ()
    drops: tuple[LiveLinkDropPlan, ...] = ()
    gray_links: tuple[LiveGrayLinkPlan, ...] = ()
    disk_faults: tuple[LiveDiskFaultPlan, ...] = ()
    corrupt_frames: tuple[LiveCorruptFramePlan, ...] = ()

    @property
    def event_count(self) -> int:
        return (
            len(self.partitions) + len(self.drops) + len(self.gray_links)
            + len(self.disk_faults) + len(self.corrupt_frames)
        )

    def describe(self) -> str:
        parts = []
        if self.partitions:
            parts.append(f"partitions={len(self.partitions)}")
        if self.drops:
            parts.append(f"drops={len(self.drops)}")
        if self.gray_links:
            parts.append(f"gray={len(self.gray_links)}")
        if self.disk_faults:
            parts.append(f"disk={len(self.disk_faults)}")
        if self.corrupt_frames:
            parts.append(f"corrupt={len(self.corrupt_frames)}")
        return " ".join(parts) if parts else "no faults"

    def validate(self, n: int) -> None:
        """Raise ``ValueError`` for pids outside ``range(n)``."""
        def check_pid(pid: int, what: str) -> None:
            if not 0 <= pid < n:
                raise ValueError(f"{what} pid {pid} outside 0..{n - 1}")

        for p in self.partitions:
            for group in p.groups:
                for pid in group:
                    check_pid(pid, "partition")
        for d in self.drops:
            check_pid(d.src, "drop src")
            check_pid(d.dst, "drop dst")
        for g in self.gray_links:
            check_pid(g.src, "gray src")
            check_pid(g.dst, "gray dst")
        for df in self.disk_faults:
            check_pid(df.pid, "disk fault")
        for c in self.corrupt_frames:
            check_pid(c.src, "corrupt src")
            check_pid(c.dst, "corrupt dst")

    # ------------------------------------------------------------------
    # JSON round-trip (reproducer files, node configs)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "partitions": [
                [p.at, [list(g) for g in p.groups], p.heal_at]
                for p in self.partitions
            ],
            "drops": [
                [d.src, d.dst, d.at, d.until] for d in self.drops
            ],
            "gray_links": [
                [g.src, g.dst, g.at, g.until, g.delay, g.jitter,
                 g.bandwidth]
                for g in self.gray_links
            ],
            "disk_faults": [
                [df.pid, df.at, df.until, df.mode, df.stall]
                for df in self.disk_faults
            ],
            "corrupt_frames": [
                [c.src, c.dst, c.at, c.until, c.rate, c.seed, c.mode]
                for c in self.corrupt_frames
            ],
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "LiveFaultPlan":
        return LiveFaultPlan(
            partitions=tuple(
                LivePartitionPlan(
                    at=float(at),
                    groups=tuple(
                        tuple(int(pid) for pid in group) for group in groups
                    ),
                    heal_at=float(heal_at),
                )
                for at, groups, heal_at in data.get("partitions", ())
            ),
            drops=tuple(
                LiveLinkDropPlan(int(s), int(d), float(at), float(until))
                for s, d, at, until in data.get("drops", ())
            ),
            gray_links=tuple(
                LiveGrayLinkPlan(
                    int(s), int(d), float(at), float(until),
                    delay=float(delay), jitter=float(jitter),
                    bandwidth=None if bw is None else float(bw),
                )
                for s, d, at, until, delay, jitter, bw
                in data.get("gray_links", ())
            ),
            disk_faults=tuple(
                LiveDiskFaultPlan(
                    int(pid), float(at), float(until),
                    mode=str(mode), stall=float(stall),
                )
                for pid, at, until, mode, stall
                in data.get("disk_faults", ())
            ),
            corrupt_frames=tuple(
                LiveCorruptFramePlan(
                    int(s), int(d), float(at), float(until),
                    rate=float(rate), seed=int(seed), mode=str(mode),
                )
                for s, d, at, until, rate, seed, mode
                in data.get("corrupt_frames", ())
            ),
        )

    # ------------------------------------------------------------------
    # Per-node compilation (what rides in each node's config file)
    # ------------------------------------------------------------------
    def for_node(self, pid: int, n: int) -> dict[str, Any]:
        """The slice of the plan node ``pid`` enforces, as plain JSON.

        Partitions compile to per-destination block windows on every
        link crossing the group boundary (a pid listed in no group is
        connected to everyone throughout).  Outbound faults (blocks,
        gray, corruption) land on the *sender*; disk faults on the owner.
        """
        blocked: list[list[float]] = []
        for p in self.partitions:
            my_group = next(
                (set(g) for g in p.groups if pid in g), None
            )
            if my_group is None:
                continue
            for dst in range(n):
                if dst != pid and dst not in my_group:
                    blocked.append([dst, p.at, p.heal_at])
        for d in self.drops:
            if d.src == pid:
                blocked.append([d.dst, d.at, d.until])
        return {
            "blocked": blocked,
            "gray": [
                [g.dst, g.at, g.until, g.delay, g.jitter, g.bandwidth]
                for g in self.gray_links if g.src == pid
            ],
            "corrupt": [
                [c.dst, c.at, c.until, c.rate, c.seed, c.mode]
                for c in self.corrupt_frames if c.src == pid
            ],
            "disk": [
                [df.at, df.until, df.mode, df.stall]
                for df in self.disk_faults if df.pid == pid
            ],
        }


class NodeFaults:
    """One node's armed fault schedule, evaluated against env-time.

    Built from the ``"faults"`` section of the node config (the output of
    :meth:`LiveFaultPlan.for_node`).  Until :meth:`set_clock` is called
    -- the node observes the cluster epoch -- every fault is inactive, so
    the pre-epoch mesh handshake is never disturbed; fault windows are
    scheduled at env-times ``>= 0`` which only exist after the epoch.
    """

    def __init__(self, pid: int, cfg: dict[str, Any]) -> None:
        self.pid = pid
        self._blocked = [
            (int(dst), float(at), float(until))
            for dst, at, until in cfg.get("blocked", ())
        ]
        self._gray = [
            (int(dst), float(at), float(until), float(delay),
             float(jitter), None if bw is None else float(bw))
            for dst, at, until, delay, jitter, bw in cfg.get("gray", ())
        ]
        self._corrupt = [
            (int(dst), float(at), float(until), float(rate), int(seed),
             str(mode))
            for dst, at, until, rate, seed, mode in cfg.get("corrupt", ())
        ]
        self._disk = [
            (float(at), float(until), str(mode), float(stall))
            for at, until, mode, stall in cfg.get("disk", ())
        ]
        self._now: Callable[[], float] | None = None
        # One stream per directed link, seeded by (plan seed, link), so
        # replays of a schedule corrupt the same way for the same traffic.
        self._rngs: dict[tuple[str, int], random.Random] = {}
        self.sends_blocked = 0
        self.frames_corrupted = 0
        self.gray_delays = 0
        self.disk_fault_failures = 0
        self.disk_fault_stalls = 0

    @property
    def empty(self) -> bool:
        return not (
            self._blocked or self._gray or self._corrupt or self._disk
        )

    def set_clock(self, now: Callable[[], float]) -> None:
        """Arm the schedule: ``now`` is the node's env-time reader."""
        self._now = now

    def _t(self) -> float:
        # Before the epoch is observed there is no env-time; report a
        # time no window can contain so every fault reads as inactive.
        return self._now() if self._now is not None else -1.0

    def _rng(self, kind: str, dst: int, seed: int = 0) -> random.Random:
        key = (kind, dst)
        if key not in self._rngs:
            self._rngs[key] = random.Random(
                (seed << 20) ^ (self.pid << 10) ^ dst
            )
        return self._rngs[key]

    # ------------------------------------------------------------------
    # Transport hooks
    # ------------------------------------------------------------------
    def send_blocked(self, dst: int) -> bool:
        """Is the directed link ``self.pid -> dst`` black-holed now?"""
        t = self._t()
        for blocked_dst, at, until in self._blocked:
            if blocked_dst == dst and at <= t < until:
                self.sends_blocked += 1
                return True
        return False

    def gray_penalty(self, dst: int, nbytes: int) -> float:
        """Seconds the write path must wait before sending ``nbytes``
        to ``dst`` (0.0 when no gray window is active)."""
        t = self._t()
        penalty = 0.0
        for gray_dst, at, until, delay, jitter, bandwidth in self._gray:
            if gray_dst != dst or not at <= t < until:
                continue
            penalty += delay
            if jitter:
                penalty += self._rng("gray", dst).uniform(0.0, jitter)
            if bandwidth:
                penalty += nbytes / bandwidth
        if penalty > 0.0:
            self.gray_delays += 1
        return penalty

    def corrupt_frame(self, dst: int, framed: bytes) -> bytes:
        """Maybe corrupt an outgoing framed payload (header included --
        a flipped length byte must hit the receiver's length cap)."""
        t = self._t()
        for c_dst, at, until, rate, seed, mode in self._corrupt:
            if c_dst != dst or not at <= t < until:
                continue
            rng = self._rng("corrupt", dst, seed)
            if rng.random() >= rate:
                continue
            self.frames_corrupted += 1
            if mode == "mixed":
                mode = rng.choice(("bitflip", "truncate"))
            if mode == "truncate":
                return framed[: rng.randrange(0, len(framed))]
            flipped = bytearray(framed)
            index = rng.randrange(0, len(flipped))
            flipped[index] ^= 1 << rng.randrange(0, 8)
            return bytes(flipped)
        return framed

    # ------------------------------------------------------------------
    # Storage hook
    # ------------------------------------------------------------------
    def disk_fault(self, *, window: bool) -> None:
        """Called by ``FileStableStorage._persist`` before the write.

        ``fail`` raises only for group-commit *window* flushes: those
        carry the retry machinery (dirty flag restored, window re-armed)
        and a lost lazy tail is condemned by the sender's restart token.
        Sync barriers are correctness-critical and stay un-failed --
        a disk that fails those is a crashed node, which SIGKILL plans
        already model.  ``stall`` delays every persist.
        """
        t = self._t()
        for at, until, mode, stall in self._disk:
            if not at <= t < until:
                continue
            if mode == "stall":
                self.disk_fault_stalls += 1
                time.sleep(stall)
            elif mode == "fail" and window:
                self.disk_fault_failures += 1
                raise OSError(
                    f"injected fsync failure (window [{at}, {until}))"
                )

    def counters(self) -> dict[str, int]:
        return {
            "sends_blocked": self.sends_blocked,
            "frames_corrupted": self.frames_corrupted,
            "gray_delays": self.gray_delays,
            "disk_fault_failures": self.disk_fault_failures,
            "disk_fault_stalls": self.disk_fault_stalls,
        }
