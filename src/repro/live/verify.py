"""Oracles for live runs.

A live run has no deterministic reference execution to diff against, but
the pipeline workload has a *closed-form* one: job ``j``'s final value is
a pure function of ``j`` and the stage count (see
:func:`pipeline_reference`).  That gives the same three checks the
simulator's conformance suite applies, from the merged trace alone:

- **recovery**: every supervisor-recorded crash is followed by that
  process's RESTART (with its recovery-token broadcast);
- **no orphan output**: every committed output value matches the
  closed-form reference -- an output produced by an orphan lineage would
  carry a value no failure-free run can produce;
- **completeness**: every job's output was committed at the final stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.applications import mix64
from repro.runtime.trace import EventKind, SimTrace


def pipeline_reference(n: int, jobs: int) -> dict[int, int]:
    """Job id -> final value a correct run commits at stage ``n - 1``."""
    expected = {}
    for job in range(jobs):
        value = mix64(job, 0)
        for stage in range(1, n):
            value = mix64(value, stage + 1)
        expected[job] = value
    return expected


@dataclass
class LiveVerdict:
    """Outcome of :func:`check_live_run`."""

    ok: bool
    failures: list[str] = field(default_factory=list)
    crashes: int = 0
    restarts: int = 0
    tokens_sent: int = 0
    outputs_committed: int = 0
    duplicate_outputs: int = 0
    jobs_expected: int = 0

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"{status}: {self.crashes} crash(es), {self.restarts} "
            f"restart(s), {self.outputs_committed}/{self.jobs_expected} "
            f"outputs committed ({self.duplicate_outputs} duplicate(s))"
            + ("" if self.ok else "; " + "; ".join(self.failures))
        )


def check_live_run(trace: SimTrace, *, n: int, jobs: int) -> LiveVerdict:
    """Grade one merged live trace against the closed-form reference."""
    failures: list[str] = []

    # --- recovery: each crash of pid is matched by a later restart -----
    crash_events = trace.events(EventKind.CRASH)
    restart_events = trace.events(EventKind.RESTART)
    token_events = trace.events(EventKind.TOKEN_SEND)
    for crash in crash_events:
        recovered = any(
            r.pid == crash.pid and r.time > crash.time
            for r in restart_events
        )
        if not recovered:
            failures.append(
                f"p{crash.pid} crashed at t={crash.time:.3f} and never "
                f"restarted"
            )
        announced = any(
            t.pid == crash.pid and t.time > crash.time
            for t in token_events
        )
        if not announced:
            failures.append(
                f"p{crash.pid} recovered without broadcasting a token"
            )

    # --- post-restart checkpoint: the new incarnation is durable -------
    for restart in restart_events:
        ckpt_after = any(
            c.pid == restart.pid and c.time >= restart.time
            for c in trace.events(EventKind.CHECKPOINT)
        )
        if not ckpt_after:
            failures.append(
                f"p{restart.pid} restarted at t={restart.time:.3f} "
                f"without a post-restart checkpoint"
            )

    # --- outputs vs the closed-form pipeline reference -----------------
    expected = pipeline_reference(n, jobs)
    committed: dict[int, int] = {}
    duplicates = 0
    for event in trace.events(EventKind.OUTPUT):
        value = event.get("value")
        if (
            not isinstance(value, tuple)
            or len(value) != 3
            or value[0] != "done"
        ):
            failures.append(f"malformed output {value!r} at p{event.pid}")
            continue
        _, job, result = value
        if job not in expected:
            failures.append(f"output for unknown job {job!r}")
            continue
        if result != expected[job]:
            # A value no failure-free execution can produce: the output
            # was computed in an orphan lineage that escaped rollback.
            failures.append(
                f"orphan output for job {job}: got {result}, "
                f"expected {expected[job]}"
            )
        if job in committed:
            duplicates += 1
        committed[job] = result
    missing = sorted(set(expected) - set(committed))
    if missing:
        failures.append(
            f"{len(missing)} job(s) never produced output "
            f"(first missing: {missing[:5]})"
        )

    return LiveVerdict(
        ok=not failures,
        failures=failures,
        crashes=len(crash_events),
        restarts=len(restart_events),
        tokens_sent=len(token_events),
        outputs_committed=len(committed),
        duplicate_outputs=duplicates,
        jobs_expected=jobs,
    )
