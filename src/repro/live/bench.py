"""Live-cluster throughput/latency benchmark (``BENCH_live.json``).

Two scenarios over the same 4-process pipeline workload:

- ``failure_free``: no crashes;
- ``one_crash``: one mid-run SIGKILL + restart.

Reported per scenario: delivery throughput, job-completion latency
percentiles (bootstrap to final-stage output, in env-time seconds),
recovery lag for the crash scenario (SIGKILL to the victim's RESTART
trace event), and the conformance verdict of the run.  Numbers are wall
time on whatever machine ran the benchmark -- they contextualise the
protocol's live behaviour, they are not simulator-grade deterministic.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.live.supervisor import (
    LiveClusterSpec,
    LiveCrashPlan,
    LiveRunResult,
    run_cluster,
)
from repro.analysis.metrics import percentile
from repro.live.verify import check_live_run
from repro.runtime.trace import EventKind


def active_window(trace: Any) -> tuple[float, float] | None:
    """The work interval of a live trace: first app delivery to last
    committed output.  This is the honest throughput denominator -- the
    wall-clock window additionally contains the readiness barrier, any
    crash-plan sleep padding, and the post-deadline linger, none of which
    the protocol can spend delivering messages."""
    delivers = trace.events(EventKind.DELIVER)
    outputs = trace.events(EventKind.OUTPUT)
    if not delivers or not outputs:
        return None
    start = min(e.time for e in delivers)
    end = max(e.time for e in outputs)
    if end <= start:
        return None
    return start, end


def _scenario_report(result: LiveRunResult) -> dict[str, Any]:
    spec = result.spec
    verdict = check_live_run(result.trace, n=spec.n, jobs=spec.jobs)
    outputs = result.trace.events(EventKind.OUTPUT)
    # Job latency: the pipeline bootstraps every job at env-time ~0, so
    # the output timestamp *is* the completion latency.
    latencies = sorted(e.time for e in outputs)
    makespan = latencies[-1] if latencies else None
    delivered = result.total_delivered
    window = active_window(result.trace)
    active_seconds = (window[1] - window[0]) if window else None
    report: dict[str, Any] = {
        "verdict": verdict.summary(),
        "ok": verdict.ok,
        "jobs": spec.jobs,
        "outputs_committed": verdict.outputs_committed,
        "wall_seconds": round(result.wall_seconds, 3),
        "active_seconds": (
            round(active_seconds, 4) if active_seconds else None
        ),
        "app_deliveries": delivered,
        # Active-window rate: deliveries over first-delivery -> last-
        # output.  The wall rate divides by the whole run (barrier +
        # crash padding + linger included) and is kept for context.
        "deliveries_per_second": (
            round(delivered / active_seconds, 2)
            if active_seconds
            else None
        ),
        "deliveries_per_second_wall": (
            round(delivered / result.wall_seconds, 2)
            if result.wall_seconds > 0
            else None
        ),
        "job_latency_s": {
            "p50": percentile(latencies, 0.50),
            "p90": percentile(latencies, 0.90),
            "p99": percentile(latencies, 0.99),
            "max": makespan,
        },
        "exit_codes": {
            str(pid): code for pid, code in sorted(result.exit_codes.items())
        },
    }
    if result.kills:
        lags = []
        for pid, kill_time in result.kills:
            restart = next(
                (
                    e
                    for e in result.trace.events(EventKind.RESTART, pid)
                    if e.time > kill_time
                ),
                None,
            )
            if restart is not None:
                lags.append(restart.time - kill_time)
        report["crashes"] = [
            {"pid": pid, "at_s": round(t, 3)} for pid, t in result.kills
        ]
        report["recovery_lag_s"] = (
            [round(lag, 3) for lag in lags] if lags else None
        )
    return report


def run_live_bench(
    workdir: str,
    *,
    n: int = 4,
    jobs: int = 64,
    run_seconds: float = 6.0,
    crash_at: float = 0.25,
    downtime: float = 1.0,
) -> dict[str, Any]:
    """Run both scenarios; returns the ``BENCH_live.json`` payload."""
    scenarios: dict[str, Any] = {}

    spec = LiveClusterSpec(n=n, jobs=jobs, run_seconds=run_seconds)
    result = run_cluster(spec, os.path.join(workdir, "failure_free"))
    scenarios["failure_free"] = _scenario_report(result)

    spec = LiveClusterSpec(
        n=n,
        jobs=jobs,
        run_seconds=run_seconds,
        crashes=[LiveCrashPlan(pid=1, at=crash_at, downtime=downtime)],
    )
    result = run_cluster(spec, os.path.join(workdir, "one_crash"))
    scenarios["one_crash"] = _scenario_report(result)

    return {
        "benchmark": "live-cluster",
        "protocol": "damani-garg",
        "n": n,
        "jobs": jobs,
        "run_seconds": run_seconds,
        "scenarios": scenarios,
    }


def write_live_bench(path: str, workdir: str, **kwargs: Any) -> dict[str, Any]:
    payload = run_live_bench(workdir, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
