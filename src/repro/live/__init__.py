"""Live asyncio cluster runtime.

Runs the same protocol objects the simulator runs -- unchanged, through
the :class:`~repro.runtime.env.RuntimeEnv` interface -- as real OS
processes talking over TCP, with file-backed stable storage and real
SIGKILL crashes:

- :mod:`repro.live.codec` / :mod:`repro.live.framing` -- the wire format
  (tagged JSON in length-prefixed frames);
- :mod:`repro.live.storage` -- :class:`FileStableStorage`, persisting the
  durable half of a process's state through ``os.replace``;
- :mod:`repro.live.env` -- :class:`LiveEnv`, the event-loop-backed
  environment implementation, and the JSONL trace writer;
- :mod:`repro.live.transport` -- the reconnecting full-mesh transport
  with per-link sequencing and a durable outbox (reliable channels
  across crashes);
- :mod:`repro.live.node` -- one cluster member (``python -m
  repro.live.node --config ...``);
- :mod:`repro.live.supervisor` -- spawns the cluster, injects SIGKILL
  crashes per a :class:`LiveCrashPlan`, merges the trace;
- :mod:`repro.live.faults` -- :class:`LiveFaultPlan`, the live mirror of
  the simulator's failure vocabulary (partitions, asymmetric drops, gray
  links, disk faults, corrupt frames), enforced node-side;
- :mod:`repro.live.verify` -- recovery/no-orphan verdict over the merged
  trace;
- :mod:`repro.live.bench` -- throughput/latency benchmark
  (``BENCH_live.json``);
- :mod:`repro.live.load` -- open-loop load generator and offered-rate
  sweep (``BENCH_load.json``).
"""

from repro.live.env import LiveEnv, LiveTrace
from repro.live.faults import (
    LiveCorruptFramePlan,
    LiveDiskFaultPlan,
    LiveFaultPlan,
    LiveGrayLinkPlan,
    LiveLinkDropPlan,
    LivePartitionPlan,
    NodeFaults,
)
from repro.live.load import LoadPipelineApp, OpenLoopSource, run_load_bench
from repro.live.storage import FileStableStorage
from repro.live.supervisor import LiveClusterSpec, LiveCrashPlan, run_cluster
from repro.live.verify import LiveVerdict, check_live_run

__all__ = [
    "FileStableStorage",
    "LiveClusterSpec",
    "LiveCorruptFramePlan",
    "LiveCrashPlan",
    "LiveDiskFaultPlan",
    "LiveEnv",
    "LiveFaultPlan",
    "LiveGrayLinkPlan",
    "LiveLinkDropPlan",
    "LivePartitionPlan",
    "LiveTrace",
    "LiveVerdict",
    "LoadPipelineApp",
    "NodeFaults",
    "OpenLoopSource",
    "check_live_run",
    "run_cluster",
]
