"""The narrow substrate interface every recovery protocol runs against.

:class:`RuntimeEnv` is the complete list of powers a protocol process has:
it can read a clock, send and broadcast messages, set timers, touch its
stable storage, record ground-truth trace events, observe metrics, and ask
whether it is alive and how many times it has crashed.  Nothing else.

Keeping the surface this narrow is what makes the protocols portable: the
same :class:`~repro.core.recovery.DamaniGargProcess` object runs unchanged
under the deterministic discrete-event simulator
(:class:`repro.sim.env.SimEnv`) and over real TCP sockets with real SIGKILL
crashes (:class:`repro.live.env.LiveEnv`).

Design notes
------------

- ``now`` is *environment time*: virtual time under the simulator, seconds
  since the cluster epoch under the live runtime.  Protocols may compare
  and subtract it but must never assume a unit.
- ``crash_count`` must be durable and monotone across failures -- protocols
  use it as the incarnation tag for fresh state uids.
- ``schedule_after`` is the only timer primitive implementations must
  provide; ``schedule_at`` has a default implementation on top of it (the
  simulator overrides it to avoid float round-trip error on absolute
  times).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Protocol, runtime_checkable

from repro.runtime.message import NetworkMessage
from repro.runtime.trace import SimTrace


@runtime_checkable
class TimerHandle(Protocol):
    """Handle for a pending timer: cancellable, with its deadline."""

    @property
    def time(self) -> float:
        """Environment time at which the timer fires (or would have)."""
        ...

    @property
    def cancelled(self) -> bool: ...

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""
        ...


class _SuspendedDeadline:
    """Record of a suspended timer chain: its deadline, nothing pending."""

    __slots__ = ("_time", "_cancelled")

    def __init__(self, time: float) -> None:
        self._time = time
        self._cancelled = False

    @property
    def time(self) -> float:
        return self._time

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True


class RuntimeEnv(abc.ABC):
    """Everything one protocol process may touch in its substrate.

    Concrete attributes (set by implementations):

    ``pid`` / ``n``
        This process's id and the system size.
    ``storage``
        The process's :class:`~repro.storage.stable.StableStorage` (or a
        durable subclass); survives crashes by construction.
    ``trace``
        The ground-truth :class:`~repro.runtime.trace.SimTrace` sink, or
        ``None`` when tracing is disabled.
    """

    pid: int
    n: int
    storage: Any
    trace: SimTrace | None

    # ------------------------------------------------------------------
    # Clock, liveness, observability
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current environment time."""

    @property
    @abc.abstractmethod
    def alive(self) -> bool:
        """Is this process currently up?  (Always true from inside a live
        OS process; the simulator models downtime explicitly.)"""

    @property
    @abc.abstractmethod
    def crash_count(self) -> int:
        """Durable number of failures so far (the incarnation tag)."""

    @property
    @abc.abstractmethod
    def tracer(self) -> Any | None:
        """The attached :class:`repro.obs.Tracer`, or ``None``."""

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def send(
        self,
        dst: int,
        payload: Any,
        *,
        kind: str = "app",
        latency: float | None = None,
    ) -> NetworkMessage:
        """Send ``payload`` to ``dst``; returns the wire envelope.

        ``latency`` overrides the transport's latency model where the
        transport supports it (the simulator's scripted scenarios); live
        transports ignore it.
        """

    @abc.abstractmethod
    def broadcast(
        self,
        payload: Any,
        *,
        kind: str = "token",
        include_self: bool = False,
    ) -> list[NetworkMessage]:
        """Send ``payload`` to every process (optionally including self)."""

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> TimerHandle:
        """Run ``callback`` after ``delay`` environment-time units.

        ``priority`` orders same-instant timers where the environment has
        an instant (the simulator); live environments ignore it.  ``label``
        is observability metadata.
        """

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> TimerHandle:
        """Run ``callback`` at absolute environment time ``when``.

        Default implementation converts to a delay; the simulator overrides
        it so that resuming a periodic chain at an exact virtual time does
        not pick up ``now + (when - now)`` float error.
        """
        return self.schedule_after(
            max(0.0, when - self.now), callback,
            priority=priority, label=label,
        )

    def suspend_timer(
        self,
        handle: TimerHandle,
        interval: float,
        *,
        label: str = "",
    ) -> TimerHandle:
        """Detach a periodic timer from its owner across downtime.

        Returns a handle standing for the suspended chain; pass it to
        :meth:`resume_timer` to re-attach the owner's callback, or cancel
        it to abandon the chain.  The default implementation simply cancels
        the pending timer and remembers its deadline.  The simulator
        overrides both methods to keep the chain's exact position in the
        deterministic event order while the owner is down (see
        :class:`repro.sim.env.SimEnv`).
        """
        handle.cancel()
        return _SuspendedDeadline(handle.time)

    def resume_timer(
        self,
        handle: TimerHandle,
        interval: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> TimerHandle:
        """Re-attach ``callback`` to a chain detached by :meth:`suspend_timer`.

        The next fire keeps the chain's phase: it lands on the first
        multiple of ``interval`` after ``now``, counted from the suspended
        deadline, rather than restarting the period from the resume instant.
        """
        next_at = handle.time
        now = self.now
        while next_at <= now:
            next_at += interval
        return self.schedule_at(next_at, callback, label=label)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def on_crash_point(self, exc: Exception) -> None:
        """Handle an armed crash point that fired in protocol code.

        Engines that can model an in-place crash override this (the
        simulator crashes the host and schedules a restart).  The live
        engine never sees the exception -- its crash points SIGKILL the
        process directly -- so the default re-raises.
        """
        raise exc

    # ------------------------------------------------------------------
    # Protocol attachment
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def attach(self, protocol: Any) -> None:
        """Register the protocol instance that receives this environment's
        lifecycle and message callbacks.  One protocol per environment."""
