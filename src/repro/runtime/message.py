"""The engine-neutral wire envelope.

A protocol sees the same :class:`NetworkMessage` whether the payload
travelled through the discrete-event :class:`~repro.sim.network.Network`
or over a real TCP connection in :mod:`repro.live`: ``msg_id`` is unique
per run, ``kind`` separates application traffic from recovery control
traffic, and ``send_time`` is in the sending environment's clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass
class NetworkMessage:
    """A message in flight.

    ``kind`` distinguishes application messages from recovery tokens and
    other control traffic; ordering disciplines apply uniformly, but the
    metrics layer accounts for them separately.
    """

    msg_id: int
    src: int
    dst: int
    kind: str            # "app" | "token" | "control"
    payload: Any
    send_time: float
    latency_override: float | None = None


#: Public-API alias; ``NetworkMessage`` remains the canonical class name.
Message = NetworkMessage
