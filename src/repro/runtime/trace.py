"""Protocol-independent ground-truth event trace.

Every simulation records what *actually happened* -- sends, deliveries,
crashes, restarts, rollbacks, discards -- into a :class:`SimTrace`.  The
analysis oracles (:mod:`repro.analysis`) reconstruct the extended
happen-before relation of the paper's Section 3 from this trace alone and
check the protocol's behaviour against it.  Protocols therefore cannot
"grade their own homework": the trace is written by the substrate and by
thin, audited hooks, not by protocol logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Iterator


class EventKind(Enum):
    """The vocabulary of trace events."""

    SEND = "send"                  # application message handed to network
    DELIVER = "deliver"            # application message delivered to the app
    DISCARD = "discard"            # message rejected (obsolete / duplicate)
    POSTPONE = "postpone"          # delivery delayed pending a token
    CRASH = "crash"                # process failed, volatile state lost
    RESTORE = "restore"            # checkpoint restored (precedes replay)
    RESTART = "restart"            # failed process restored and running again
    ROLLBACK = "rollback"          # non-failed process undid orphan states
    CHECKPOINT = "checkpoint"      # state saved to stable storage
    LOG_FLUSH = "log_flush"        # volatile message log forced to stable
    TOKEN_SEND = "token_send"      # recovery token broadcast
    TOKEN_DELIVER = "token_deliver"
    STATE = "state"                # new state interval began
    OUTPUT = "output"              # output committed to the environment
    PARTITION = "partition"        # network partition imposed
    HEAL = "heal"                  # network partition healed
    CUSTOM = "custom"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    ``fields`` carries kind-specific data (message ids, state ids, version
    numbers).  Keeping it a plain dict keeps the trace schema-free; the
    analysis layer documents the keys each oracle requires.
    """

    seq: int
    time: float
    kind: EventKind
    pid: int
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class SimTrace:
    """Append-only event log with query helpers."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(
        self, time: float, kind: EventKind, pid: int, **fields: Any
    ) -> TraceEvent:
        event = TraceEvent(
            seq=len(self._events), time=time, kind=kind, pid=pid, fields=fields
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        kind: EventKind | None = None,
        pid: int | None = None,
    ) -> list[TraceEvent]:
        """Events filtered by kind and/or process id, in order."""
        result: Iterable[TraceEvent] = self._events
        if kind is not None:
            result = (e for e in result if e.kind is kind)
        if pid is not None:
            result = (e for e in result if e.pid == pid)
        return list(result)

    def count(self, kind: EventKind, pid: int | None = None) -> int:
        return len(self.events(kind, pid))

    def last(self, kind: EventKind, pid: int | None = None) -> TraceEvent | None:
        matches = self.events(kind, pid)
        return matches[-1] if matches else None

    def signature(self) -> str:
        """A deterministic digest of the whole trace.

        Two runs with the same seed must produce equal signatures; the
        determinism tests rely on this.
        """
        import hashlib

        h = hashlib.blake2b(digest_size=16)
        for e in self._events:
            h.update(
                f"{e.seq}|{e.time!r}|{e.kind.value}|{e.pid}|"
                f"{sorted(e.fields.items())!r}\n".encode("utf-8")
            )
        return h.hexdigest()
