"""Piecewise-deterministic process and application model.

The paper (Section 3) models a process execution as a sequence of states in
which every transition is caused by a message receive, and everything a
process does between two receives (internal computation, sends) is a
deterministic function of the pre-state and the received message.  This
module provides:

- :class:`Application` -- the deterministic state machine a user writes;
- :class:`AppExecutor` -- runs an application for one process, records
  ground-truth ``STATE``/``DELIVER`` trace events, and supports *replay*
  (re-execution from a checkpoint with sends and outputs suppressed), the
  operation at the heart of log-based recovery;
- :class:`RecoveryProcess` -- the four lifecycle hooks a protocol
  implementation exposes to its runtime environment.

Everything here is engine-agnostic: the executor reads time and the tracer
through a :class:`~repro.runtime.env.RuntimeEnv` and runs identically under
the discrete-event simulator and the live asyncio runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind, SimTrace


@dataclass(frozen=True)
class SendRecord:
    """One send issued by the application during a state transition."""

    dst: int
    payload: Any


@dataclass(frozen=True)
class OutputRecord:
    """One value the application emitted to the environment."""

    value: Any


class ProcessContext:
    """What the application sees while handling a message.

    Deliberately minimal: exposing simulation time or randomness here would
    break piecewise determinism (replay would diverge).  Nondeterministic
    input must be modelled as a message receive, exactly as the paper
    prescribes.
    """

    def __init__(self, pid: int, n: int) -> None:
        self.pid = pid
        self.n = n
        self.sends: list[SendRecord] = []
        self.outputs: list[OutputRecord] = []

    def send(self, dst: int, payload: Any) -> None:
        """Queue an application message to ``dst``."""
        if not 0 <= dst < self.n:
            raise ValueError(f"destination {dst} out of range 0..{self.n - 1}")
        self.sends.append(SendRecord(dst, payload))

    def output(self, value: Any) -> None:
        """Emit a value to the environment (subject to output commit)."""
        self.outputs.append(OutputRecord(value))


class Application(Protocol):
    """A piecewise-deterministic application.

    Implementations must be deterministic: ``handle`` may depend only on
    ``state`` and ``payload`` (plus the static ``ctx.pid``/``ctx.n``), and
    must treat ``state`` as immutable, returning the successor state.  The
    recovery protocols rely on this to reconstruct states by replaying
    logged messages.
    """

    def initial_state(self, pid: int, n: int) -> Any:
        """The state before any message is received."""
        ...

    def handle(self, state: Any, payload: Any, ctx: ProcessContext) -> Any:
        """Consume one message; return the successor state."""
        ...

    def bootstrap(self, pid: int, n: int, ctx: ProcessContext) -> None:
        """Optional initial sends before any receive (default: none)."""
        ...


#: Ground-truth identity of a state interval: ``(pid, incarnation, serial)``.
#:
#: ``incarnation`` is the environment's durable crash count at the moment the
#: state was first created; ``serial`` increases monotonically within an
#: incarnation and is **never reused**, even across rollbacks -- a replayed
#: transition recreates its *original* uid (taken from the message log),
#: while fresh post-rollback states draw fresh serials.  This is what lets
#: the analysis oracles distinguish an undone state from a replacement that
#: has the same step number, even when a rollback reaches past a restart
#: into an older protocol version.
StateUid = tuple[int, int, int]


#: Sentinel distinguishing the legacy ``AppExecutor(app, pid, n, sim,
#: trace)`` construction form from the env-based one.
_LEGACY = object()


class _SimClockAdapter:
    """Give a bare simulator + trace the reading surface of a RuntimeEnv.

    Supports the legacy ``AppExecutor(app, pid, n, sim, trace)``
    construction form without this module importing :mod:`repro.sim`.
    """

    __slots__ = ("_sim", "trace")

    def __init__(self, sim: Any, trace: SimTrace | None) -> None:
        self._sim = sim
        self.trace = trace

    @property
    def now(self) -> float:
        return self._sim.now

    @property
    def tracer(self) -> Any | None:
        return self._sim.tracer


class AppExecutor:
    """Drives one process's application, with replay support.

    The executor is substrate code shared by every recovery protocol, so the
    ``DELIVER`` trace events it records are trustworthy ground truth for the
    analysis oracles.

    The canonical constructor takes a :class:`~repro.runtime.env.RuntimeEnv`
    (time, tracer and trace are read through it); the legacy five-argument
    form ``AppExecutor(app, pid, n, sim, trace)`` still works.
    """

    def __init__(
        self,
        app: Application,
        pid: int,
        n: int,
        env: Any = None,
        trace: Any = _LEGACY,
        *,
        sim: Any = None,
    ) -> None:
        if sim is not None:
            # Legacy keyword form: AppExecutor(app, pid, n, sim=..., trace=...)
            env = _SimClockAdapter(
                sim, None if trace is _LEGACY else trace
            )
        elif trace is not _LEGACY:
            # Legacy positional form: AppExecutor(app, pid, n, sim, trace)
            env = _SimClockAdapter(env, trace)
        if env is None:
            raise TypeError("AppExecutor requires an env (or legacy sim=)")
        self.app = app
        self.pid = pid
        self.n = n
        self.env = env
        self.trace: SimTrace | None = env.trace
        self.state: Any = app.initial_state(pid, n)
        self.epoch = 0               # protocol-semantic version, for display
        self.step = 0
        self._mint_tag = 0           # incarnation tag for fresh uids
        self._serial = 0             # monotone within incarnation
        self.current_uid: StateUid = (pid, 0, 0)
        # Optional per-state application-state recording, used by the
        # offline predicate-detection utilities.  Application states are
        # immutable by contract, so references are safe to keep.
        self.record_states = False
        self.state_by_uid: dict[StateUid, Any] = {
            self.current_uid: self.state
        }

    def bootstrap(self) -> ProcessContext:
        """Run the application's initial sends (live only, never replayed
        through this path -- protocols checkpoint the post-bootstrap state)."""
        ctx = ProcessContext(self.pid, self.n)
        self.app.bootstrap(self.pid, self.n, ctx)
        return ctx

    def execute(
        self,
        payload: Any,
        *,
        msg_id: int,
        replay: bool = False,
        uid: StateUid | None = None,
    ) -> ProcessContext:
        """Apply one message to the application state.

        Live execution mints a fresh state uid; replay must pass the
        original uid (recorded in the message log), because a replayed
        transition recreates the *same* state.  Returns the context holding
        the sends/outputs the handler produced; callers transmit them live
        and discard them during replay (piecewise determinism guarantees the
        replayed copies equal the originals).
        """
        if replay and uid is None:
            raise ValueError("replay requires the original state uid")
        prev_uid = self.current_uid
        ctx = ProcessContext(self.pid, self.n)
        self.state = self.app.handle(self.state, payload, ctx)
        self.step += 1
        if replay:
            self.current_uid = uid  # type: ignore[assignment]
        else:
            self._serial += 1
            self.current_uid = (self.pid, self._mint_tag, self._serial)
        if self.record_states:
            self.state_by_uid[self.current_uid] = self.state
        tracer = self.env.tracer
        if tracer is not None:
            tracer.counter(
                "app.replayed_transitions" if replay
                else "app.live_transitions"
            )
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.DELIVER,
                self.pid,
                msg_id=msg_id,
                uid=self.current_uid,
                prev_uid=prev_uid,
                replay=replay,
            )
        return ctx

    def snapshot(self) -> dict[str, Any]:
        """Capture executor state for a checkpoint."""
        import copy

        return {
            "state": copy.deepcopy(self.state),
            "epoch": self.epoch,
            "step": self.step,
            "uid": self.current_uid,
        }

    def restore(self, snap: dict[str, Any]) -> None:
        """Reset to a snapshot.  The serial counter is deliberately *not*
        restored: fresh states after a rollback must not reuse the uids of
        the states they replace."""
        import copy

        self.state = copy.deepcopy(snap["state"])
        self.step = snap["step"]
        self.epoch = snap["epoch"]
        self.current_uid = snap["uid"]

    def begin_incarnation(self, mint_tag: int, epoch: int) -> StateUid:
        """Start a new incarnation after a failure (restart).

        ``mint_tag`` must be durable and monotone across crashes (the
        environment's crash count); ``epoch`` is the protocol's new version
        number, kept for display.  Mints the fresh post-recovery state (the
        paper's ``r10``); returns the uid of the restored state it follows.
        """
        prev = self.current_uid
        self.epoch = epoch
        self._mint_tag = mint_tag
        self._serial = 0
        self.current_uid = (self.pid, mint_tag, 0)
        return prev

    def new_recovery_state(self) -> StateUid:
        """Mint the fresh post-rollback state (the paper's ``r20``).

        Returns the previous (restored) uid.
        """
        prev = self.current_uid
        self._serial += 1
        self.current_uid = (self.pid, self._mint_tag, self._serial)
        return prev


class RecoveryProcess(Protocol):
    """What a protocol implementation plugs into a runtime environment."""

    def on_start(self) -> None: ...

    def on_network_message(self, msg: NetworkMessage) -> None: ...

    def on_crash(self) -> None: ...

    def on_restart(self) -> None: ...
