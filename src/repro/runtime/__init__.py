"""Engine-agnostic runtime surface for recovery protocols.

This package is the *only* substrate a protocol implementation may touch:
:class:`RuntimeEnv` (send/broadcast, timers, virtual-or-wall time, stable
storage, liveness, tracing) plus the engine-neutral data model that rides
on it -- the wire envelope (:class:`NetworkMessage`), the ground-truth
event trace (:class:`SimTrace`), and the piecewise-deterministic
application model (:class:`Application` / :class:`AppExecutor`).

Two implementations exist:

- :class:`repro.sim.env.SimEnv` -- wraps a discrete-event
  :class:`~repro.sim.process.ProcessHost`; bit-identical to the historical
  host-coupled behaviour (the conformance suite pins trace signatures);
- :class:`repro.live.env.LiveEnv` -- an asyncio TCP runtime where each
  process is a real OS process with file-backed stable storage and crashes
  are real SIGKILLs.

Nothing in this package may import :mod:`repro.sim` or :mod:`repro.live`;
the layering guard test enforces it.
"""

from repro.runtime.app import (
    Application,
    AppExecutor,
    OutputRecord,
    ProcessContext,
    RecoveryProcess,
    SendRecord,
    StateUid,
)
from repro.runtime.env import RuntimeEnv, TimerHandle
from repro.runtime.message import Message, NetworkMessage
from repro.runtime.trace import EventKind, SimTrace, TraceEvent

__all__ = [
    "AppExecutor",
    "Application",
    "EventKind",
    "Message",
    "NetworkMessage",
    "OutputRecord",
    "ProcessContext",
    "RecoveryProcess",
    "RuntimeEnv",
    "SendRecord",
    "SimTrace",
    "StateUid",
    "TimerHandle",
    "TraceEvent",
]
