"""Distributed Shared Memory on top of the message-passing substrate.

The paper (Section 2) points out that "by using the technique presented in
[7], recovery algorithms for message passing architecture can be extended
to Distributed Shared Memory" (see also its references [18, 23, 24] on
recoverable DSM).  This package makes the claim concrete: a
sequentially-consistent, write-invalidate DSM implemented as a
piecewise-deterministic application, so the *unchanged* recovery protocols
transparently give it rollback recovery.

- :class:`~repro.dsm.coherence.DSMApp` -- home-based pages, read caching,
  write-invalidate with invalidation acknowledgements (writes commit only
  after every cached copy is invalidated, which is what makes the memory
  sequentially consistent), and an atomic fetch-and-add.
- Invariants checked by the tests after crashes and rollbacks: dense
  per-page version sequences at homes, reads always return some committed
  write, per-worker version monotonicity, and no lost or duplicated
  fetch-and-add increments in the surviving history.
"""

from repro.dsm.coherence import (
    DSMApp,
    DSMFetchAdd,
    DSMFetchAddAck,
    DSMInvAck,
    DSMInvalidate,
    DSMRead,
    DSMReadData,
    DSMWrite,
    DSMWriteAck,
    HomeState,
    WorkerState,
)

__all__ = [
    "DSMApp",
    "DSMFetchAdd",
    "DSMFetchAddAck",
    "DSMInvAck",
    "DSMInvalidate",
    "DSMRead",
    "DSMReadData",
    "DSMWrite",
    "DSMWriteAck",
    "HomeState",
    "WorkerState",
]
