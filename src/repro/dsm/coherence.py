"""Write-invalidate DSM coherence as a piecewise-deterministic application.

Topology: processes ``0 .. homes-1`` are *home nodes* (page ``p`` lives at
``p % homes``); the remaining processes are *workers* running a
deterministic mix of reads, writes and fetch-and-adds with one operation
outstanding each.

Coherence protocol (home-based, write-invalidate, sequentially consistent):

- **read**: the home adds the reader to the page's copyset and returns the
  current ``(value, version)``; the worker caches it.  Reads arriving while
  a write is in flight are deferred behind it, so no reader can slip a
  stale copy past a committing write.
- **write / fetch-add**: if any *other* process caches the page, the home
  queues the operation, sends invalidations, and commits only when every
  invalidation is acknowledged; then it bumps the version, appends to the
  page's write log, and acknowledges the writer (who becomes the sole
  cached copy).  Queued operations on a page commit strictly in arrival
  order.
- **fetch-add** computes its result at commit time, which is what makes it
  atomic: no two increments can read the same base value.

Everything -- queues, copysets, pending invalidations -- lives in the home
*state*, so checkpoint/replay recovery applies to the protocol machinery
itself, not just the page contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.apps.applications import mix64
from repro.runtime.app import ProcessContext


# ---------------------------------------------------------------------------
# Wire types
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DSMRead:
    page: int
    reader: int
    req: int


@dataclass(frozen=True)
class DSMWrite:
    page: int
    value: int
    writer: int
    req: int


@dataclass(frozen=True)
class DSMFetchAdd:
    page: int
    delta: int
    writer: int
    req: int


@dataclass(frozen=True)
class DSMReadData:
    page: int
    value: int
    version: int
    req: int


@dataclass(frozen=True)
class DSMWriteAck:
    page: int
    value: int
    version: int
    req: int


@dataclass(frozen=True)
class DSMFetchAddAck:
    page: int
    value: int              # the post-increment value
    version: int
    req: int


@dataclass(frozen=True)
class DSMInvalidate:
    page: int
    home: int


@dataclass(frozen=True)
class DSMInvAck:
    page: int
    sender: int


# ---------------------------------------------------------------------------
# Home state
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _PendingOp:
    """A queued write/fetch-add: commit when ``awaiting`` empties."""

    kind: str                       # "write" | "fetchadd"
    page: int
    operand: int                    # value for write, delta for fetchadd
    writer: int
    req: int
    awaiting: tuple[int, ...]


@dataclass(frozen=True)
class HomeState:
    """All per-page machinery, immutably."""

    #: page -> (value, version)
    pages: tuple[tuple[int, tuple[int, int]], ...] = ()
    #: page -> caching pids
    copysets: tuple[tuple[int, tuple[int, ...]], ...] = ()
    #: queued operations, oldest first (only the head of each page's queue
    #: has invalidations outstanding)
    pending: tuple[_PendingOp, ...] = ()
    #: reads deferred behind in-flight writes: (page, reader, req)
    deferred_reads: tuple[tuple[int, int, int], ...] = ()
    #: append-only commit history: (page, version, value, writer, kind)
    write_log: tuple[tuple[int, int, int, int, str], ...] = ()

    # -- accessors ------------------------------------------------------
    def page_entry(self, page: int) -> tuple[int, int]:
        for p, entry in self.pages:
            if p == page:
                return entry
        return (0, 0)

    def copyset(self, page: int) -> tuple[int, ...]:
        for p, members in self.copysets:
            if p == page:
                return members
        return ()

    def has_pending(self, page: int) -> bool:
        return any(op.page == page for op in self.pending)

    # -- functional updates ---------------------------------------------
    def with_page(self, page: int, value: int, version: int) -> "HomeState":
        pages = dict(self.pages)
        pages[page] = (value, version)
        return self._replace(pages=tuple(sorted(pages.items())))

    def with_copyset(self, page: int, members: tuple[int, ...]) -> "HomeState":
        copysets = dict(self.copysets)
        copysets[page] = tuple(sorted(set(members)))
        return self._replace(copysets=tuple(sorted(copysets.items())))

    def _replace(self, **changes: Any) -> "HomeState":
        fields = {
            "pages": self.pages,
            "copysets": self.copysets,
            "pending": self.pending,
            "deferred_reads": self.deferred_reads,
            "write_log": self.write_log,
        }
        fields.update(changes)
        return HomeState(**fields)


# ---------------------------------------------------------------------------
# Worker state
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerState:
    ops_sent: int = 0
    replies: int = 0
    adds_acked: int = 0
    #: page -> (value, version) of the cached copy
    cache: tuple[tuple[int, tuple[int, int]], ...] = ()
    #: every value this worker ever observed: (page, version, value)
    reads_log: tuple[tuple[int, int, int], ...] = ()

    def cached(self, page: int) -> tuple[int, int] | None:
        for p, entry in self.cache:
            if p == page:
                return entry
        return None

    def with_cache(self, page: int, entry: tuple[int, int] | None) -> "WorkerState":
        cache = dict(self.cache)
        if entry is None:
            cache.pop(page, None)
        else:
            cache[page] = entry
        return WorkerState(
            ops_sent=self.ops_sent,
            replies=self.replies,
            adds_acked=self.adds_acked,
            cache=tuple(sorted(cache.items())),
            reads_log=self.reads_log,
        )


class DSMApp:
    """The DSM application (home or worker, switched on pid)."""

    def __init__(
        self,
        *,
        homes: int = 1,
        pages: int = 4,
        ops_per_worker: int = 30,
    ) -> None:
        if homes < 1 or pages < 1:
            raise ValueError("need at least one home and one page")
        self.homes = homes
        self.pages = pages
        self.ops_per_worker = ops_per_worker

    def is_home(self, pid: int) -> bool:
        return pid < self.homes

    def home_of(self, page: int) -> int:
        return page % self.homes

    # ------------------------------------------------------------------
    # Application protocol
    # ------------------------------------------------------------------
    def initial_state(self, pid: int, n: int) -> Any:
        if self.is_home(pid):
            return HomeState()
        return WorkerState(ops_sent=1 if self.homes < n else 0)

    def bootstrap(self, pid: int, n: int, ctx: ProcessContext) -> None:
        if self.is_home(pid) or self.homes >= n:
            return
        self._issue_op(0, pid, ctx)

    def handle(self, state: Any, payload: Any, ctx: ProcessContext) -> Any:
        if self.is_home(ctx.pid):
            return self._home_handle(state, payload, ctx)
        return self._worker_handle(state, payload, ctx)

    # ------------------------------------------------------------------
    # Home side
    # ------------------------------------------------------------------
    def _home_handle(
        self, state: HomeState, payload: Any, ctx: ProcessContext
    ) -> HomeState:
        if isinstance(payload, DSMRead):
            if state.has_pending(payload.page):
                # Serialize reads behind in-flight writes.
                return state._replace(
                    deferred_reads=state.deferred_reads
                    + ((payload.page, payload.reader, payload.req),)
                )
            return self._serve_read(
                state, payload.page, payload.reader, payload.req, ctx
            )
        if isinstance(payload, (DSMWrite, DSMFetchAdd)):
            kind = "write" if isinstance(payload, DSMWrite) else "fetchadd"
            operand = (
                payload.value if isinstance(payload, DSMWrite) else payload.delta
            )
            op = _PendingOp(
                kind=kind,
                page=payload.page,
                operand=operand,
                writer=payload.writer,
                req=payload.req,
                awaiting=(),
            )
            return self._enqueue_op(state, op, ctx)
        if isinstance(payload, DSMInvAck):
            return self._apply_inv_ack(state, payload, ctx)
        raise TypeError(f"home got {payload!r}")

    def _serve_read(
        self, state: HomeState, page: int, reader: int, req: int,
        ctx: ProcessContext,
    ) -> HomeState:
        value, version = state.page_entry(page)
        ctx.send(reader, DSMReadData(page=page, value=value,
                                     version=version, req=req))
        return state.with_copyset(page, state.copyset(page) + (reader,))

    def _enqueue_op(
        self, state: HomeState, op: _PendingOp, ctx: ProcessContext
    ) -> HomeState:
        if state.has_pending(op.page):
            # Behind an in-flight op: queue; it starts when the head commits.
            return state._replace(pending=state.pending + (op,))
        return self._start_op(state, op, ctx)

    def _start_op(
        self, state: HomeState, op: _PendingOp, ctx: ProcessContext
    ) -> HomeState:
        others = tuple(
            pid for pid in state.copyset(op.page) if pid != op.writer
        )
        if not others:
            return self._commit_op(state, op, ctx)
        for pid in others:
            ctx.send(pid, DSMInvalidate(page=op.page, home=ctx.pid))
        started = _PendingOp(
            kind=op.kind,
            page=op.page,
            operand=op.operand,
            writer=op.writer,
            req=op.req,
            awaiting=others,
        )
        return state._replace(pending=state.pending + (started,))

    def _commit_op(
        self, state: HomeState, op: _PendingOp, ctx: ProcessContext
    ) -> HomeState:
        value, version = state.page_entry(op.page)
        if op.kind == "write":
            new_value = op.operand
        else:
            new_value = value + op.operand
        new_version = version + 1
        state = state.with_page(op.page, new_value, new_version)
        state = state.with_copyset(op.page, (op.writer,))
        state = state._replace(
            write_log=state.write_log
            + ((op.page, new_version, new_value, op.writer, op.kind),)
        )
        ack_type = DSMWriteAck if op.kind == "write" else DSMFetchAddAck
        ctx.send(
            op.writer,
            ack_type(page=op.page, value=new_value, version=new_version,
                     req=op.req),
        )
        return self._drain_page_queue(state, op.page, ctx)

    def _drain_page_queue(
        self, state: HomeState, page: int, ctx: ProcessContext
    ) -> HomeState:
        """After a commit: serve deferred reads, then start the next
        queued op for this page (if any)."""
        ready_reads = [r for r in state.deferred_reads if r[0] == page]
        state = state._replace(
            deferred_reads=tuple(
                r for r in state.deferred_reads if r[0] != page
            )
        )
        for _page, reader, req in ready_reads:
            state = self._serve_read(state, page, reader, req, ctx)
        queue = [op for op in state.pending if op.page == page]
        if not queue:
            return state
        head, rest = queue[0], queue[1:]
        state = state._replace(
            pending=tuple(
                op for op in state.pending if op.page != page
            ) + tuple(rest)
        )
        return self._start_op(state, head, ctx)

    def _apply_inv_ack(
        self, state: HomeState, ack: DSMInvAck, ctx: ProcessContext
    ) -> HomeState:
        updated: list[_PendingOp] = []
        committed: _PendingOp | None = None
        for op in state.pending:
            if (
                committed is None
                and op.page == ack.page
                and ack.sender in op.awaiting
            ):
                remaining = tuple(
                    pid for pid in op.awaiting if pid != ack.sender
                )
                if remaining:
                    updated.append(
                        _PendingOp(op.kind, op.page, op.operand, op.writer,
                                   op.req, remaining)
                    )
                else:
                    committed = op
            else:
                updated.append(op)
        state = state._replace(pending=tuple(updated))
        if committed is not None:
            state = self._commit_op(state, committed, ctx)
        return state

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_handle(
        self, state: WorkerState, payload: Any, ctx: ProcessContext
    ) -> WorkerState:
        if isinstance(payload, DSMInvalidate):
            ctx.send(payload.home, DSMInvAck(page=payload.page,
                                             sender=ctx.pid))
            return state.with_cache(payload.page, None)
        if isinstance(payload, DSMReadData):
            state = state.with_cache(
                payload.page, (payload.value, payload.version)
            )
            return self._complete_op(
                state, payload.page, payload.value, payload.version,
                added=0, ctx=ctx,
            )
        if isinstance(payload, DSMWriteAck):
            state = state.with_cache(
                payload.page, (payload.value, payload.version)
            )
            return self._complete_op(
                state, payload.page, payload.value, payload.version,
                added=0, ctx=ctx,
            )
        if isinstance(payload, DSMFetchAddAck):
            state = state.with_cache(
                payload.page, (payload.value, payload.version)
            )
            return self._complete_op(
                state, payload.page, payload.value, payload.version,
                added=1, ctx=ctx,
            )
        raise TypeError(f"worker got {payload!r}")

    def _complete_op(
        self, state: WorkerState, page: int, value: int, version: int,
        *, added: int, ctx: ProcessContext,
    ) -> WorkerState:
        state = WorkerState(
            ops_sent=state.ops_sent,
            replies=state.replies + 1,
            adds_acked=state.adds_acked + added,
            cache=state.cache,
            reads_log=state.reads_log + ((page, version, value),),
        )
        if state.ops_sent < self.ops_per_worker:
            self._issue_op(state.ops_sent, ctx.pid, ctx)
            state = WorkerState(
                ops_sent=state.ops_sent + 1,
                replies=state.replies,
                adds_acked=state.adds_acked,
                cache=state.cache,
                reads_log=state.reads_log,
            )
        return state

    def _issue_op(self, seq: int, pid: int, ctx: ProcessContext) -> None:
        h = mix64(pid * 104729 + 7, seq)
        page = h % self.pages
        home = self.home_of(page)
        choice = (h >> 8) % 3
        if choice == 0:
            ctx.send(home, DSMRead(page=page, reader=pid, req=seq))
        elif choice == 1:
            ctx.send(home, DSMWrite(page=page, value=h & 0xFFFF,
                                    writer=pid, req=seq))
        else:
            ctx.send(home, DSMFetchAdd(page=page, delta=1,
                                       writer=pid, req=seq))
