"""Command-line interface: ``python -m repro``.

Subcommands:

- ``run``      -- one experiment with chosen protocol/workload/failures,
                  oracle-checked, with an optional timeline dump;
- ``table1``   -- regenerate the paper's Table 1;
- ``figures``  -- verify the Figure 1 / Figure 5 scenarios;
- ``overhead`` -- print the Section 6.9 overhead report for a run;
- ``trace``    -- run a named scenario fully instrumented, write a
                  JSON-lines trace and print the metrics summary;
- ``bench``    -- benchmark a named scenario and emit ``BENCH_obs.json``;
- ``stress``   -- randomized fault-injection sweep: thousands of seeded
                  schedules, every run graded by the invariant oracles,
                  failures shrunk to replayable JSON reproducers;
- ``exec-bench`` -- benchmark the parallel execution engine itself:
                  run one seed block serially and in parallel, verify the
                  results are bit-identical, emit ``BENCH_exec.json``;
- ``wire-bench`` -- wire & storage fast path: delta-clock piggyback cost
                  on stress-mix plus before/after live cluster runs
                  (JSON vs binary frames, per-mutation vs group-commit
                  fsyncs), emitting ``BENCH_wire.json``;
- ``load``     -- open-loop load generator: one live cluster per offered
                  rate, honest p50/p99 latency-vs-offered-load curves,
                  emitting ``BENCH_load.json``;
- ``serve``    -- boot the sharded multi-tenant KV service
                  (``repro.service``): S independent recovery domains,
                  printed client endpoints, per-shard crash schedules;
- ``service-bench`` -- closed-loop user simulator (concurrent sessions,
                  Zipfian keys) over the service while replicas are
                  SIGKILLed: exactly-once audit, per-shard unavailability
                  and stale-read windows, ``BENCH_service.json``.

Examples::

    python -m repro run --protocol damani-garg -n 4 --crash 20:1 --seed 7
    python -m repro run --protocol strom-yemini --crash 20:1 --timeline
    python -m repro table1 --seeds 0 1 2
    python -m repro figures
    python -m repro trace quickstart
    python -m repro bench crash-storm --repeats 5
    python -m repro stress --schedules 500 --seed 0 --jobs 4
    python -m repro stress --replay stress-repro-seed55.json
    python -m repro stress --live --schedules 3
    python -m repro live -n 3 --jobs 9 --no-crash --faults --fault-seed 7
    python -m repro exec-bench --schedules 200 --jobs 4
    python -m repro serve --shards 2 --run-seconds 10
    python -m repro service-bench --shards 2 --sessions 200
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import check_recovery, measure_overhead
from repro.apps import BankApp, PingPongApp, PipelineApp, RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.comparison import run_table1
from repro.harness.conformance import PROTOCOL_REGISTRY
from repro.harness.reporting import render_paper_comparison, render_table1
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.harness.timeline import lane_summary, render_timeline
from repro.protocols import (
    CoordinatedProcess,
    ProtocolConfig,
    StromYeminiProcess,
)
from repro.sim.failures import CrashPlan
from repro.sim.network import DeliveryOrder

#: CLI protocol names resolve through the shared conformance registry.
PROTOCOLS = PROTOCOL_REGISTRY

WORKLOADS = {
    "routing": lambda n: RandomRoutingApp(
        hops=50, seeds=tuple(range(min(2, n))), initial_items=3
    ),
    "bank": lambda n: BankApp(seeds=(0,) if n < 3 else (0, 2)),
    "pipeline": lambda n: PipelineApp(jobs=10),
    "pingpong": lambda n: PingPongApp(rounds=50),
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_crashes(specs: list[str]) -> CrashPlan | None:
    """Each spec is ``time:pid`` or ``time:pid:downtime``."""
    if not specs:
        return None
    plan = CrashPlan()
    for spec in specs:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise SystemExit(f"bad --crash spec {spec!r}; use time:pid[:down]")
        time, pid = float(parts[0]), int(parts[1])
        downtime = float(parts[2]) if len(parts) == 3 else 2.0
        plan.crash(time, pid, downtime)
    return plan


# ---------------------------------------------------------------------------
# Shared argument groups.  Subcommands compose these helpers so the same
# concept always spells the same flag (locked by the --help snapshot in
# tests/test_cli_surface.py); defaults stay per-subcommand where they
# legitimately differ.
# ---------------------------------------------------------------------------
def _add_n(
    parser: argparse.ArgumentParser,
    *,
    default: int | None = 4,
    required: bool = False,
    help: str | None = None,
) -> None:
    if required:
        parser.add_argument("-n", type=int, required=True, help=help)
    else:
        parser.add_argument("-n", type=int, default=default, help=help)


def _add_seed(
    parser: argparse.ArgumentParser,
    *,
    default: int | None = 0,
    help: str | None = None,
) -> None:
    parser.add_argument("--seed", type=int, default=default, help=help)


def _add_out(
    parser: argparse.ArgumentParser,
    default: str | None,
    *,
    help: str | None = None,
) -> None:
    parser.add_argument("--out", default=default, metavar="PATH", help=help)


def _add_workdir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workdir", default=None,
                        help="keep run artifacts here (default: temp dir)")


def _add_cluster_shape(
    parser: argparse.ArgumentParser, *, jobs: int, run_seconds: float
) -> None:
    parser.add_argument("--jobs", type=int, default=jobs)
    parser.add_argument("--run-seconds", type=float, default=run_seconds)


def _add_crash_specs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--crash", action="append", default=[],
                        metavar="TIME:PID[:DOWN]")


def _add_service_cluster(
    parser: argparse.ArgumentParser, *, run_seconds: float = 12.0
) -> None:
    """Topology/failure flags shared by ``serve`` and ``service-bench``."""
    parser.add_argument("--shards", type=_positive_int, default=2)
    parser.add_argument("--nodes-per-shard", type=_positive_int, default=4,
                        help="1 gateway + N-1 replicas per shard")
    parser.add_argument("--run-seconds", type=float, default=run_seconds,
                        help="cap on the run; the bench stops the shards "
                             "as soon as the workload and audit complete")
    parser.add_argument("--crash-at", type=float, default=2.0,
                        help="env-time of each shard's replica SIGKILL")
    parser.add_argument("--downtime", type=float, default=0.75)
    parser.add_argument("--no-crash", action="store_true",
                        help="skip the per-shard SIGKILL")
    parser.add_argument("--fault-seed", type=int, default=None,
                        help="draw a seeded network/disk fault plan per "
                             "shard (default: no faults)")
    _add_workdir(parser)


def _service_config(args: argparse.Namespace) -> "object":
    from repro.service import ServiceConfig

    workload = {}
    for name in ("sessions", "ops_per_session", "keys", "put_ratio",
                 "zipf_s", "seed", "request_timeout"):
        if hasattr(args, name):
            workload[name] = getattr(args, name)
    return ServiceConfig(
        shards=args.shards,
        nodes_per_shard=args.nodes_per_shard,
        run_seconds=args.run_seconds,
        crash_replicas=not args.no_crash,
        crash_at=args.crash_at,
        downtime=args.downtime,
        fault_seed=args.fault_seed,
        **workload,
    )


def cmd_run(args: argparse.Namespace) -> int:
    protocol = PROTOCOLS[args.protocol]
    app = WORKLOADS[args.workload](args.n)
    order = (
        DeliveryOrder.FIFO
        if protocol.requires_fifo or args.fifo
        else DeliveryOrder.RANDOM
    )
    spec = ExperimentSpec(
        n=args.n,
        app=app,
        protocol=protocol,
        crashes=_parse_crashes(args.crash),
        seed=args.seed,
        horizon=args.horizon,
        order=order,
        config=ProtocolConfig(
            checkpoint_interval=args.checkpoint_interval,
            flush_interval=args.flush_interval,
        ),
    )
    result = run_experiment(spec)

    print(f"protocol   : {protocol.name}")
    print(f"workload   : {args.workload}  n={args.n}  seed={args.seed}")
    print(f"delivered  : {result.total_delivered}")
    print(f"restarts   : {result.total_restarts}   "
          f"rollbacks: {result.total_rollbacks}")
    print(f"discarded  : {result.total('app_discarded')}   "
          f"postponed: {result.total('app_postponed')}")
    print()
    print(lane_summary(result.trace, args.n))

    if args.timeline:
        print("\n--- timeline ---")
        print(render_timeline(result.trace, limit=args.timeline_limit))

    strict = protocol not in (StromYeminiProcess, CoordinatedProcess)
    verdict = check_recovery(
        result,
        expect_minimal_rollback=strict,
        expect_maximum_recovery=strict,
        expect_single_rollback_per_failure=strict,
    )
    print(f"\noracle: {'OK' if verdict.ok else 'VIOLATIONS'}")
    for violation in verdict.violations:
        print(f"  - {violation}")
    return 0 if verdict.ok else 1


def cmd_table1(args: argparse.Namespace) -> int:
    rows = run_table1(n=args.n, seeds=tuple(args.seeds), jobs=args.jobs)
    print(render_table1(rows))
    print()
    print(render_paper_comparison(rows))
    return 0 if all(row.safety_ok for row in rows) else 1


def cmd_figures(_args: argparse.Namespace) -> int:
    from repro.harness.scenarios import figure1, figure5

    result1 = figure1()
    ok1 = (
        result1.protocols[1].clock.pairs() == result1.notes["p1_after_m0"]
        and result1.protocols[2].clock.pairs() == result1.notes["r20"]
        and check_recovery(result1).ok
    )
    print(f"figure 1: {'verified' if ok1 else 'MISMATCH'}")

    result5 = figure5()
    from repro.sim.trace import EventKind

    ok5 = (
        len(result5.trace.events(EventKind.POSTPONE, pid=0)) == 1
        and len(result5.trace.events(EventKind.DISCARD, pid=2)) == 1
        and result5.protocols[0].stats.rollbacks == 1
        and check_recovery(result5).ok
    )
    print(f"figure 5: {'verified' if ok5 else 'MISMATCH'}")
    return 0 if ok1 and ok5 else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a named scenario instrumented; dump JSONL + metrics summary."""
    from time import perf_counter

    from repro.harness.reporting import render_metrics_report
    from repro.obs import MetricsReport, Tracer, build_scenario, write_jsonl

    spec = build_scenario(args.scenario, args.seed)
    tracer = Tracer()
    spec.tracer = tracer
    start = perf_counter()
    result = run_experiment(spec)
    wall = perf_counter() - start

    out_path = args.out or f"trace_{args.scenario}.jsonl"
    lines = write_jsonl(
        tracer,
        out_path,
        meta={
            "scenario": args.scenario,
            "n": spec.n,
            "seed": spec.seed,
            "horizon": spec.horizon,
            "trace_signature": result.trace.signature(),
        },
    )
    report = MetricsReport.from_run(result, tracer, wall_time_s=wall)
    print(f"scenario : {args.scenario}")
    print(f"trace    : {out_path} ({lines} lines)")
    print()
    print(render_metrics_report(report))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Benchmark a named scenario; emit the BENCH_obs.json trajectory."""
    from repro.obs import (
        run_bench,
        run_bench_matrix,
        write_bench_json,
        write_bench_matrix_json,
    )

    if args.matrix:
        matrix = run_bench_matrix(
            seed=args.seed, repeats=args.repeats, jobs=args.jobs
        )
        out = args.out if args.out != "BENCH_obs.json" else "BENCH_obs_matrix.json"
        path = write_bench_matrix_json(matrix, out)
        print(matrix.summary())
        print(f"written: {path}")
        return 0

    bench = run_bench(
        args.scenario, seed=args.seed, repeats=args.repeats, jobs=args.jobs
    )
    path = write_bench_json(bench, args.out)
    print(f"scenario              : {bench.scenario}  "
          f"(n={bench.n}, seed={bench.seed}, repeats={bench.repeats})")
    print(f"wall time (best)      : {bench.wall_time_s:.4f} s")
    print(f"events/sec            : {bench.events_per_sec:,.0f}")
    print(f"delivered             : {bench.delivered}")
    print(f"peak history records  : {bench.peak_history_records}")
    print(f"piggyback bytes total : {bench.piggyback_bytes_total:.0f}")
    print(f"piggyback bytes/msg   : {bench.piggyback_bytes_per_message:.1f}")
    print(f"tokens broadcast      : {bench.tokens_broadcast:.0f}")
    print(f"rollbacks / restarts  : {bench.rollbacks} / {bench.restarts}")
    print(f"written               : {path}")
    return 0


def cmd_stress(args: argparse.Namespace) -> int:
    """Randomized fault-injection sweep (or replay of one reproducer)."""
    import json
    from pathlib import Path

    from repro.stress import PROFILES, load_reproducer, run_case, sweep

    profile = PROFILES[args.profile]

    if args.replay is not None:
        # Reproducers are self-describing: a "live": true marker routes
        # the replay to the real TCP cluster, everything else to the
        # simulator.  Either way the shrunk case is what replays.
        payload = json.loads(Path(args.replay).read_text())
        if payload.get("live"):
            from repro.stress import load_live_reproducer, run_live_case

            case, payload = load_live_reproducer(Path(args.replay))
            print(f"replaying {args.replay} (live): {case.describe()}")
            result = run_live_case(case)
        else:
            case, payload = load_reproducer(Path(args.replay))
            print(f"replaying {args.replay}: {case.describe()}")
            result = run_case(
                case, theorem_max_states=profile.theorem_max_states
            )
        if result.failed:
            print(f"still failing: {result.headline()}")
            for violation in result.violations:
                print(f"  - {violation}")
            return 1
        recorded = payload.get("violations") or [payload.get("error")]
        print(f"now passing (previously: {recorded[0]})")
        return 0

    if args.live:
        return _cmd_stress_live(args)

    out_dir = Path(args.out_dir) if args.out_dir else None
    if args.fail_fast and args.jobs > 1:
        raise SystemExit("--fail-fast requires --jobs 1")

    cache = None
    if args.cache_dir is not None:
        from repro.exec import ResultCache

        cache = ResultCache(args.cache_dir)

    def progress(index: int, result) -> None:
        if result.failed:
            print(f"  seed {result.case.seed}: {result.headline()}")
        elif (index + 1) % 100 == 0:
            print(f"  ... {index + 1}/{args.schedules} schedules")

    report = sweep(
        args.schedules,
        base_seed=args.seed,
        profile=profile,
        shrink=not args.no_shrink,
        fail_fast=args.fail_fast,
        out_dir=out_dir,
        run=run_case,
        progress=progress if not args.quiet else None,
        jobs=args.jobs,
        cache=cache,
    )
    print(report.summary())
    for path in report.reproducers:
        print(f"  wrote {path}")
    return 0 if report.ok else 1


def _cmd_stress_live(args: argparse.Namespace) -> int:
    """``stress --live``: seeded fault schedules on real TCP clusters."""
    from pathlib import Path

    from repro.stress import live_sweep

    if args.jobs > 1:
        raise SystemExit("--live runs serially; drop --jobs")
    if args.cache_dir is not None:
        raise SystemExit("--live does not support --cache-dir")

    def progress(index: int, result) -> None:
        if result.failed:
            print(f"  seed {result.case.seed}: {result.headline()}")
        else:
            print(f"  seed {result.case.seed}: ok "
                  f"({result.case.describe()})")

    report = live_sweep(
        args.schedules,
        base_seed=args.seed,
        shrink=not args.no_shrink,
        fail_fast=args.fail_fast,
        out_dir=Path(args.out_dir) if args.out_dir else None,
        progress=progress if not args.quiet else None,
    )
    print(report.summary())
    for path in report.reproducers:
        print(f"  wrote {path}")
    return 0 if report.ok else 1


def cmd_exec_bench(args: argparse.Namespace) -> int:
    """Serial-vs-parallel engine benchmark; emit BENCH_exec.json."""
    from repro.exec import run_exec_bench, write_exec_bench_json

    bench = run_exec_bench(
        args.schedules,
        jobs=args.jobs,
        profile=args.profile,
        base_seed=args.seed,
        budget_slots=args.budget_slots,
    )
    path = write_exec_bench_json(bench, args.out)
    print(bench.summary())
    print(f"written: {path}")
    if not bench.identical:
        return 1
    if args.min_speedup is not None and bench.speedup < args.min_speedup:
        print(
            f"FAIL: speedup {bench.speedup:.2f}x is below the "
            f"--min-speedup floor {args.min_speedup:.2f}x"
        )
        return 1
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        n=args.n,
        app=WORKLOADS["routing"](args.n),
        protocol=DamaniGargProcess,
        crashes=_parse_crashes(args.crash),
        seed=args.seed,
        horizon=args.horizon,
    )
    result = run_experiment(spec)
    report = measure_overhead(result)
    print(f"n                     : {report.n}")
    print(f"failures              : {report.failures}")
    print(f"app messages          : {report.app_messages}")
    print(f"control messages      : {report.control_messages}")
    print(f"piggyback entries/msg : "
          f"{report.piggyback_entries_per_message:.1f}")
    print(f"piggyback bits/msg    : {report.piggyback_bits_per_message:.0f}")
    print(f"history records (max) : {report.history_records_max} "
          f"(bound {report.history_bound})")
    print(f"checkpoints taken     : {report.checkpoints_taken}")
    print(f"log flushes           : {report.log_flushes}")
    print(f"rollbacks / restarts  : {report.rollbacks} / {report.restarts}")
    return 0


def cmd_live(args: argparse.Namespace) -> int:
    """Run a real asyncio/TCP cluster with a SIGKILL crash; grade it."""
    import json
    import tempfile

    from repro.live import (
        LiveClusterSpec,
        LiveCrashPlan,
        LiveFaultPlan,
        check_live_run,
        run_cluster,
    )

    crashes = []
    if not args.no_crash:
        crashes.append(
            LiveCrashPlan(
                pid=args.crash_pid,
                at=args.crash_at,
                downtime=args.downtime,
            )
        )
    faults = LiveFaultPlan()
    if args.faults is not None:
        if args.faults == "@seeded":
            from repro.stress import seeded_fault_plan

            faults = seeded_fault_plan(
                args.fault_seed, n=args.n, run_seconds=args.run_seconds
            )
        else:
            with open(args.faults, "r", encoding="utf-8") as fh:
                faults = LiveFaultPlan.from_dict(json.load(fh))
        print(f"fault schedule: {faults.describe()}")
    spec = LiveClusterSpec(
        n=args.n,
        jobs=args.jobs,
        run_seconds=args.run_seconds,
        crashes=crashes,
        faults=faults,
    )
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-live-")
    print(
        f"starting {spec.n}-process live cluster "
        f"({spec.jobs} jobs, {len(crashes)} crash(es)) in {workdir}"
    )
    result = run_cluster(spec, workdir)
    for pid, kill_time in result.kills:
        print(f"  SIGKILL -> p{pid} at t={kill_time:.3f}s")
    verdict = check_live_run(result.trace, n=spec.n, jobs=spec.jobs)
    print(f"trace events  : {len(result.trace)}")
    print(f"deliveries    : {result.total_delivered}")
    print(f"wall time     : {result.wall_seconds:.2f}s")
    if faults.event_count:
        for pid in sorted(result.done):
            counters = result.done[pid].get("faults", {})
            fired = {k: v for k, v in counters.items() if v}
            if fired:
                print(f"  p{pid} fault injections: {fired}")
    print(verdict.summary())
    return 0 if verdict.ok else 1


def cmd_rollback(args: argparse.Namespace) -> int:
    """Operator rollback of a stopped live cluster's stable storage."""
    from repro.live.rollback import RollbackError, describe, rollback_cluster

    try:
        outcome = rollback_cluster(
            args.data_dir,
            args.n,
            at=args.at,
            earliest=args.earliest,
            reason=args.reason,
            witness=args.witness,
            dry_run=args.dry_run,
            pids=args.pids,
        )
    except RollbackError as exc:
        print(f"rollback refused: {exc}")
        return 1
    for pid in sorted(outcome["reports"]):
        print(describe(outcome["reports"][pid]))
    if args.dry_run:
        print("dry run: no image was modified")
    else:
        print(f"audit: {outcome['audit_path']}")
    return 0


def cmd_live_bench(args: argparse.Namespace) -> int:
    """Live throughput/latency benchmark; emit BENCH_live.json."""
    import tempfile

    from repro.live.bench import write_live_bench

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-live-bench-")
    payload = write_live_bench(
        args.out,
        workdir,
        n=args.n,
        jobs=args.jobs,
        run_seconds=args.run_seconds,
    )
    for name, scenario in payload["scenarios"].items():
        print(f"{name}: {scenario['verdict']}")
        print(
            f"  {scenario['app_deliveries']} deliveries in "
            f"{scenario['wall_seconds']}s "
            f"({scenario['deliveries_per_second']}/s)"
        )
    print(f"written: {args.out}")
    return 0 if all(
        s["ok"] for s in payload["scenarios"].values()
    ) else 1


def cmd_wire_bench(args: argparse.Namespace) -> int:
    """Wire/storage fast-path benchmark; emit BENCH_wire.json."""
    import tempfile

    from repro.live.wirebench import write_wire_bench

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-wire-bench-")
    payload = write_wire_bench(
        args.out,
        workdir,
        n=args.n,
        jobs=args.jobs,
        run_seconds=args.run_seconds,
        seed=args.seed,
        skip_live=args.skip_live,
    )
    pig = payload["piggyback"]
    print(
        f"piggyback (stress-mix): {pig['full_json_bytes_per_msg']} B/msg "
        f"full JSON vs {pig['delta_bytes_per_msg']} B/msg delta "
        f"({pig['reduction_factor']}x smaller, "
        f"{pig['full_clock_fallbacks']} full-clock fallbacks)"
    )
    ok = True
    if pig["reduction_factor"] is None or pig["reduction_factor"] < (
        args.min_piggyback_reduction or 0.0
    ):
        print(
            f"FAIL: piggyback reduction below the "
            f"--min-piggyback-reduction floor "
            f"{args.min_piggyback_reduction}"
        )
        ok = False
    for name, pair in payload.get("live", {}).items():
        before, after = pair["before"], pair["after"]
        print(f"{name}:")
        for label, rep in (("before", before), ("after", after)):
            print(
                f"  {label:6s} [{rep['wire_format']}, "
                f"window={rep['storage_flush_window']}]: "
                f"{rep['app_deliveries']} deliveries "
                f"({rep['deliveries_per_second']}/s), "
                f"{rep['fsyncs_per_delivery']} fsyncs/delivery, "
                f"{rep['wire_bytes_per_delivery']} wire B/delivery -- "
                f"{'ok' if rep['ok'] else 'ORACLE FAIL'}"
            )
            ok = ok and rep["ok"]
    print(f"written: {args.out}")
    return 0 if ok else 1


def cmd_load(args: argparse.Namespace) -> int:
    """Open-loop load sweep; emit BENCH_load.json."""
    import tempfile

    from repro.live.load import (
        append_trend_row,
        check_load_payload,
        check_trend,
        write_load_bench,
    )

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-load-")
    payload = write_load_bench(
        args.out,
        workdir,
        n=args.n,
        rates=tuple(args.rates),
        duration=args.duration,
        start_at=args.start_at,
    )
    for name, s in payload["scenarios"].items():
        lat = s["job_latency_s"]
        print(f"{name}: {s['verdict']}")
        print(
            f"  offered {s['offered_rate']:.0f}/s -> "
            f"{s['app_deliveries']} deliveries in "
            f"{s['active_seconds']}s active "
            f"({s['deliveries_per_second']}/s; "
            f"{s['deliveries_per_second_wall']}/s wall)"
        )
        print(
            f"  latency p50={lat['p50']}s p99={lat['p99']}s "
            f"min={lat['min']}s max={lat['max']}s"
        )
    print(
        f"max sustained rate        : {payload['max_sustained_rate']}"
    )
    print(
        f"peak deliveries/sec       : "
        f"{payload['peak_deliveries_per_second']}"
    )
    print(f"written: {args.out}")

    problems = check_load_payload(
        payload, min_deliveries_per_sec=args.min_deliveries_per_sec
    )
    if args.trend_file:
        if args.check_trend:
            problems.extend(check_trend(args.trend_file, payload))
        append_trend_row(args.trend_file, payload)
    for problem in problems:
        print(f"FAIL: {problem}")
    return 1 if problems else 0


def cmd_scale_bench(args: argparse.Namespace) -> int:
    """Piggyback scale sweep over live clusters; emit BENCH_scale.json."""
    import tempfile

    from repro.live.scalebench import (
        append_trend_row,
        check_scale_payload,
        check_trend,
        write_scale_bench,
    )

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-scale-")
    payload = write_scale_bench(
        args.out,
        workdir,
        ns=tuple(args.ns),
        jobs=args.jobs,
        runner_jobs=args.runner_jobs,
        budget_slots=args.budget_slots,
    )
    for name, s in payload["scenarios"].items():
        print(f"{name}: {s.get('verdict')}")
        if not s.get("ok"):
            continue
        print(
            f"  piggyback {s['full_json_bytes_per_msg']} B/msg full-JSON "
            f"vs {s['delta_bytes_per_msg']} B/msg delta "
            f"({s['clocks_sent']} clocks)"
        )
        print(
            f"  {s['deliveries']} deliveries "
            f"({s['deliveries_per_second']}/s active; "
            f"{s['fsyncs_per_delivery']} fsyncs/delivery; "
            f"{s['wall_seconds']}s wall)"
        )
    growth = payload["growth"]
    print(
        f"growth exponent           : "
        f"full-JSON {growth['full_json_exponent']}, "
        f"delta {growth['delta_exponent']} "
        f"(gate <= {args.max_exponent})"
    )
    print(f"written: {args.out}")

    problems = check_scale_payload(payload, max_exponent=args.max_exponent)
    if args.trend_file:
        if args.check_trend:
            problems.extend(check_trend(args.trend_file, payload))
        append_trend_row(args.trend_file, payload)
    for problem in problems:
        print(f"FAIL: {problem}")
    return 1 if problems else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot the sharded KV service and run it for --run-seconds."""
    import tempfile

    from repro.service import ShardManager
    from repro.service.bench import check_shard_trace

    config = _service_config(args)
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-serve-")
    manager = ShardManager(config, workdir)
    print(
        f"booting {config.shards} shard(s) x {config.nodes_per_shard} "
        f"node(s) in {workdir}"
    )
    manager.start()
    manager.wait_ready()
    print(f"routing : v{manager.routing.version}, "
          f"{manager.routing.shards} shard(s)")
    for ep in manager.endpoints():
        print(
            f"  shard {ep.shard}: ingress {ep.host}:{ep.ingress_port}  "
            f"replies {list(ep.reply_ports)}"
        )
    print(f"serving for {config.run_seconds}s ...")
    results = manager.join()
    ok = True
    for shard in sorted(results):
        result = results[shard]
        for pid, kill_time in result.kills:
            print(f"  shard {shard}: SIGKILL -> p{pid} "
                  f"at t={kill_time:.3f}s")
        oracle = check_shard_trace(result.trace)
        verdict = "ok" if oracle["ok"] else "ORACLE FAIL"
        print(
            f"  shard {shard}: {verdict} "
            f"({oracle['crashes']} crash(es), "
            f"{oracle['restarts']} restart(s), "
            f"{oracle['tokens']} token(s))"
        )
        for failure in oracle["failures"]:
            print(f"    - {failure}")
        ok = ok and oracle["ok"]
    return 0 if ok else 1


def cmd_service_bench(args: argparse.Namespace) -> int:
    """Closed-loop user simulator over the service; BENCH_service.json."""
    import tempfile

    from repro.service import check_service_payload, write_service_bench

    config = _service_config(args)
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-service-")
    payload = write_service_bench(args.out, workdir, config)
    exactly_once = payload["exactly_once"]
    print(
        f"ops: {payload['ops_total'] - payload['ops_failed']}"
        f"/{payload['ops_total']} completed, "
        f"{payload['puts_acked']} put(s) acked"
    )
    print(
        f"exactly-once: "
        f"{'VERIFIED' if exactly_once['verified'] else 'FAILED'} "
        f"({exactly_once['audited_keys']} key(s) audited, "
        f"{len(exactly_once['mismatches'])} mismatch(es), "
        f"{exactly_once['monotonicity_violations']} monotonicity "
        f"violation(s))"
    )
    for shard, report in sorted(payload["per_shard"].items()):
        unavailable = report["unavailability"]
        stale = report["stale_reads"]
        latency = report["latency_s"]
        oracle = report.get("oracle", {})
        print(
            f"shard {shard}: {report['ops']} ops "
            f"(p50={latency['p50']}s p99={latency['p99']}s), "
            f"{report['retries']} retries -- "
            f"unavailable {unavailable['total_s']}s over "
            f"{unavailable['windows']} window(s), "
            f"stale {stale['total_s']}s over {stale['events']} event(s), "
            f"oracle {'ok' if oracle.get('ok') else 'FAIL'}"
        )
    print(f"written: {args.out}")
    problems = check_service_payload(payload)
    for problem in problems:
        print(f"FAIL: {problem}")
    return 1 if problems else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Damani-Garg optimistic recovery reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one oracle-checked experiment")
    run_parser.add_argument("--protocol", choices=sorted(PROTOCOLS),
                            default="damani-garg")
    run_parser.add_argument("--workload", choices=sorted(WORKLOADS),
                            default="routing")
    _add_n(run_parser)
    _add_seed(run_parser)
    run_parser.add_argument("--horizon", type=float, default=100.0)
    _add_crash_specs(run_parser)
    run_parser.add_argument("--fifo", action="store_true",
                            help="force FIFO channels")
    run_parser.add_argument("--checkpoint-interval", type=float, default=8.0)
    run_parser.add_argument("--flush-interval", type=float, default=2.5)
    run_parser.add_argument("--timeline", action="store_true")
    run_parser.add_argument("--timeline-limit", type=int, default=120)
    run_parser.set_defaults(func=cmd_run)

    t1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    _add_n(t1)
    t1.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    t1.add_argument("--jobs", type=_positive_int, default=1,
                    help="measure protocol rows in parallel")
    t1.set_defaults(func=cmd_table1)

    figures = sub.add_parser("figures", help="verify Figures 1 and 5")
    figures.set_defaults(func=cmd_figures)

    from repro.obs.scenarios import SCENARIOS

    trace = sub.add_parser(
        "trace",
        help="instrumented run: JSON-lines trace + metrics summary",
    )
    trace.add_argument("scenario", choices=sorted(SCENARIOS))
    _add_seed(trace, default=None,
              help="override the scenario's default seed")
    _add_out(trace, None,
             help="trace output path (default trace_<scenario>.jsonl)")
    trace.set_defaults(func=cmd_trace)

    bench = sub.add_parser(
        "bench",
        help="benchmark a scenario and emit BENCH_obs.json",
    )
    bench.add_argument("scenario", nargs="?", default="quickstart",
                       choices=sorted(SCENARIOS))
    _add_seed(bench, default=None)
    bench.add_argument("--repeats", type=_positive_int, default=3)
    _add_out(bench, "BENCH_obs.json")
    bench.add_argument("--jobs", type=_positive_int, default=1,
                       help="run repeats (and matrix cells) in parallel")
    bench.add_argument("--matrix", action="store_true",
                       help="benchmark every scenario into one merged report")
    bench.set_defaults(func=cmd_bench)

    from repro.stress.profiles import PROFILES as STRESS_PROFILES

    stress = sub.add_parser(
        "stress",
        help="randomized fault-injection sweep with invariant oracles",
    )
    stress.add_argument("--schedules", type=_positive_int, default=500,
                        help="number of generated schedules (default 500)")
    _add_seed(stress, help="base seed; schedule i uses seed+i")
    stress.add_argument("--profile", choices=sorted(STRESS_PROFILES),
                        default="default")
    stress.add_argument("--out-dir", default=None, metavar="DIR",
                        help="directory for JSON reproducers of failures")
    stress.add_argument("--no-shrink", action="store_true",
                        help="skip minimising failing cases")
    stress.add_argument("--fail-fast", action="store_true",
                        help="stop at the first failing schedule")
    stress.add_argument("--quiet", action="store_true",
                        help="no per-schedule progress output")
    stress.add_argument("--replay", default=None, metavar="JSON",
                        help="replay one reproducer file instead of sweeping")
    stress.add_argument("--jobs", type=_positive_int, default=1,
                        help="run schedules across worker processes")
    stress.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk result cache for schedule outcomes")
    stress.add_argument("--live", action="store_true",
                        help="sweep seeded fault schedules on real TCP "
                             "clusters (partitions, gray links, disk "
                             "faults, corrupt frames) instead of the "
                             "simulator")
    stress.set_defaults(func=cmd_stress)

    exec_bench = sub.add_parser(
        "exec-bench",
        help="serial-vs-parallel engine benchmark; emit BENCH_exec.json",
    )
    exec_bench.add_argument("--schedules", type=_positive_int, default=200)
    exec_bench.add_argument("--jobs", type=_positive_int, default=4)
    exec_bench.add_argument("--profile", choices=sorted(STRESS_PROFILES),
                            default="quick")
    _add_seed(exec_bench)
    _add_out(exec_bench, "BENCH_exec.json")
    exec_bench.add_argument("--min-speedup", type=float, default=None,
                            help="fail unless speedup reaches this floor")
    exec_bench.add_argument("--budget-slots", type=_positive_int,
                            default=None,
                            help="run the parallel leg under a "
                                 "ProcessBudget of this many slots "
                                 "(default: unlimited admission)")
    exec_bench.set_defaults(func=cmd_exec_bench)

    overhead = sub.add_parser("overhead",
                              help="Section 6.9 overhead report")
    _add_n(overhead)
    _add_seed(overhead)
    overhead.add_argument("--horizon", type=float, default=100.0)
    _add_crash_specs(overhead)
    overhead.set_defaults(func=cmd_overhead)

    live = sub.add_parser(
        "live",
        help="run a real asyncio/TCP cluster with SIGKILL crashes",
    )
    _add_n(live)
    _add_cluster_shape(live, jobs=32, run_seconds=6.0)
    live.add_argument("--crash-pid", type=int, default=1)
    live.add_argument("--crash-at", type=float, default=0.25)
    live.add_argument("--downtime", type=float, default=1.0)
    live.add_argument("--no-crash", action="store_true")
    live.add_argument("--faults", nargs="?", const="@seeded", default=None,
                      metavar="JSON",
                      help="inject a fault schedule: a LiveFaultPlan JSON "
                           "file, or (with no value) a seeded schedule "
                           "drawn from --fault-seed")
    live.add_argument("--fault-seed", type=int, default=0,
                      help="seed for the generated fault schedule")
    _add_workdir(live)
    live.set_defaults(func=cmd_live)

    rollback = sub.add_parser(
        "rollback",
        help="operator rollback of a stopped cluster to a checkpoint "
             "frontier (orphans preserved, witnessed audit record)",
    )
    rollback.add_argument("--data-dir", required=True,
                          help="the cluster's stable-storage directory")
    _add_n(rollback, required=True,
           help="cluster size (stable_p0..p{n-1})")
    frontier = rollback.add_mutually_exclusive_group(required=True)
    frontier.add_argument("--at", type=float, default=None,
                          help="anchor: latest checkpoint at or before "
                               "this env-time")
    frontier.add_argument("--earliest", action="store_true",
                          help="anchor: the earliest retained checkpoint")
    rollback.add_argument("--reason", required=True,
                          help="why (recorded in the audit trail)")
    rollback.add_argument("--witness", required=True,
                          help="who approved (recorded in the audit trail)")
    rollback.add_argument("--dry-run", action="store_true",
                          help="report the rewind without touching images")
    rollback.add_argument("--pids", type=int, nargs="+", default=None,
                          help="only these nodes (default: all)")
    rollback.set_defaults(func=cmd_rollback)

    live_bench = sub.add_parser(
        "live-bench",
        help="live throughput/latency benchmark (BENCH_live.json)",
    )
    _add_n(live_bench)
    _add_cluster_shape(live_bench, jobs=64, run_seconds=6.0)
    _add_out(live_bench, "BENCH_live.json")
    _add_workdir(live_bench)
    live_bench.set_defaults(func=cmd_live_bench)

    wire_bench = sub.add_parser(
        "wire-bench",
        help="wire/storage fast-path benchmark (BENCH_wire.json)",
    )
    _add_n(wire_bench)
    _add_cluster_shape(wire_bench, jobs=64, run_seconds=6.0)
    _add_seed(wire_bench, default=None,
              help="stress-mix seed for the piggyback section")
    wire_bench.add_argument("--skip-live", action="store_true",
                            help="piggyback section only (no TCP clusters)")
    wire_bench.add_argument("--min-piggyback-reduction", type=float,
                            default=None, metavar="FACTOR",
                            help="fail unless delta clocks shrink piggyback "
                                 "bytes/msg by at least this factor")
    _add_out(wire_bench, "BENCH_wire.json")
    _add_workdir(wire_bench)
    wire_bench.set_defaults(func=cmd_wire_bench)

    load = sub.add_parser(
        "load",
        help="open-loop load sweep over live clusters (BENCH_load.json)",
    )
    _add_n(load)
    load.add_argument("--rates", type=float, nargs="+",
                      default=[250.0, 500.0, 1000.0, 2000.0],
                      help="offered job rates to sweep (jobs/sec)")
    load.add_argument("--duration", type=float, default=4.0,
                      help="seconds of offered load per scenario")
    load.add_argument("--start-at", type=float, default=0.25,
                      help="env-time of the first injection")
    _add_out(load, "BENCH_load.json")
    _add_workdir(load)
    load.add_argument("--min-deliveries-per-sec", type=float, default=0.0,
                      help="fail unless the sweep's best scenario reaches "
                           "this active-window throughput")
    load.add_argument("--trend-file", default=None, metavar="JSONL",
                      help="append a one-line trend row after the sweep")
    load.add_argument("--check-trend", action="store_true",
                      help="fail if peak throughput collapses vs the "
                           "trend file's best recorded row")
    load.set_defaults(func=cmd_load)

    scale = sub.add_parser(
        "scale-bench",
        help="piggyback scale sweep n=4..64 over live clusters "
             "(BENCH_scale.json)",
    )
    scale.add_argument("--ns", type=_positive_int, nargs="+",
                       default=[4, 8, 16, 32, 64],
                       help="cluster sizes to sweep")
    scale.add_argument("--jobs", type=_positive_int, default=12,
                       help="pipeline jobs per scenario (fixed across n)")
    scale.add_argument("--runner-jobs", type=_positive_int, default=2,
                       help="exec-engine workers driving the scenarios")
    scale.add_argument("--budget-slots", type=_positive_int, default=None,
                       help="ProcessBudget slots; each scenario weighs "
                            "n+1 (default: one slot per CPU)")
    scale.add_argument("--max-exponent", type=float, default=1.3,
                       help="fail if a fitted bytes/msg growth exponent "
                            "exceeds this (the O(n) gate)")
    _add_out(scale, "BENCH_scale.json")
    _add_workdir(scale)
    scale.add_argument("--trend-file", default=None, metavar="JSONL",
                       help="append a one-line trend row after the sweep")
    scale.add_argument("--check-trend", action="store_true",
                       help="fail if delta piggyback regresses vs the "
                            "trend file's best recorded rows")
    scale.set_defaults(func=cmd_scale_bench)

    serve = sub.add_parser(
        "serve",
        help="boot the sharded KV service (repro.service) and run it",
    )
    _add_service_cluster(serve)
    serve.set_defaults(func=cmd_serve)

    service_bench = sub.add_parser(
        "service-bench",
        help="closed-loop user simulator over the sharded service "
             "(BENCH_service.json)",
    )
    _add_service_cluster(service_bench, run_seconds=150.0)
    service_bench.add_argument("--sessions", type=_positive_int, default=200,
                               help="concurrent closed-loop user sessions")
    service_bench.add_argument("--ops-per-session", type=_positive_int,
                               default=20)
    service_bench.add_argument("--keys", type=_positive_int, default=64)
    service_bench.add_argument("--put-ratio", type=float, default=0.6)
    service_bench.add_argument("--zipf-s", type=float, default=1.1,
                               help="Zipf skew of the key popularity")
    _add_seed(service_bench, help="workload seed (session op streams)")
    service_bench.add_argument("--request-timeout", type=float, default=0.4,
                               help="per-attempt reply timeout before a "
                                    "same-op-id retry")
    _add_out(service_bench, "BENCH_service.json")
    service_bench.set_defaults(func=cmd_service_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
