"""Per-process stable storage.

A :class:`StableStorage` object survives simulated crashes by construction:
the protocol clears only its *volatile* members on failure.  It aggregates
the checkpoint store, the message log, a synchronously-written token log
(the paper logs every received token synchronously so a crash cannot forget
one), and a small key-value area for durable scalars such as the version
number.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.storage.checkpoint import CheckpointStore
from repro.storage.log import MessageLog


class StableStorage:
    """Everything process ``pid`` keeps on disk."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.checkpoints = CheckpointStore()
        self.log = MessageLog()
        self._tokens: list[Any] = []
        self._token_keys: set[Any] = set()
        self._kv: dict[str, Any] = {}
        self._lazy_providers: dict[str, Callable[[], Any]] = {}
        self.sync_writes = 0
        self.lazy_writes = 0
        self.token_log_dedups = 0

    # ------------------------------------------------------------------
    # Token log (synchronous)
    # ------------------------------------------------------------------
    def log_token(self, token: Any, *, dedupe_key: Any = None) -> bool:
        """Synchronously persist a received token (paper Section 6.3).

        With ``dedupe_key`` (e.g. ``(origin, version)``), a token whose
        key is already logged is skipped: tokens are final per version,
        so the retained copy is byte-identical and the skip saves both
        the synchronous write and unbounded token-log growth under
        retransmitted/duplicated tokens -- the log stays O(n·f).
        Returns whether an entry was actually appended.
        """
        if dedupe_key is not None:
            if dedupe_key in self._token_keys:
                self.token_log_dedups += 1
                return False
            self._token_keys.add(dedupe_key)
        self._tokens.append(token)
        self.sync_writes += 1
        return True

    @property
    def tokens(self) -> list[Any]:
        return list(self._tokens)

    # ------------------------------------------------------------------
    # Durable scalars
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        self._kv[key] = value
        self.sync_writes += 1

    def put_lazy(self, key: str, value: Any) -> None:
        """Buffered durable write: the value becomes durable at the next
        synchronous barrier (any :meth:`put`, token log, checkpoint or
        log mutation) or flush window, whichever comes first.  In-memory
        storage has no window, so this is :meth:`put` minus the
        synchronous-write accounting."""
        self._kv[key] = value
        self.lazy_writes += 1

    def register_lazy_provider(
        self, key: str, provider: Callable[[], Any]
    ) -> None:
        """Register a callback that yields ``key``'s current value.

        Pull model for high-churn lazy values (the transport outbox): the
        owner mutates its own structure and calls :meth:`mark_lazy_dirty`
        -- O(1) -- and the storage invokes ``provider()`` to snapshot the
        value only when it actually writes.  The push model
        (:meth:`put_lazy`) serialises a full value per mutation, which is
        O(size) per message on the send path.
        """
        self._lazy_providers[key] = provider

    def mark_lazy_dirty(self) -> None:
        """Note that some provider-backed value changed.

        In-memory storage has no write scheduling, so providers are
        materialised immediately; :class:`FileStableStorage` overrides
        this to defer the snapshot to the group-commit window.
        """
        self._materialize_providers()
        self.lazy_writes += 1

    def _materialize_providers(self) -> None:
        for key, provider in self._lazy_providers.items():
            self._kv[key] = provider()

    def get(self, key: str, default: Any = None) -> Any:
        if key in self._lazy_providers:
            return self._lazy_providers[key]()
        return self._kv.get(key, default)

    # ------------------------------------------------------------------
    # Failure hook
    # ------------------------------------------------------------------
    def on_crash(self) -> int:
        """Apply crash semantics: only the volatile log buffer is lost."""
        return self.log.on_crash()
