"""Per-process stable storage.

A :class:`StableStorage` object survives simulated crashes by construction:
the protocol clears only its *volatile* members on failure.  It aggregates
the checkpoint store, the message log, a synchronously-written token log
(the paper logs every received token synchronously so a crash cannot forget
one), and a small key-value area for durable scalars such as the version
number.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.storage.checkpoint import CheckpointStore
from repro.storage.intents import AUDIT_TAIL, CrashPointReached, IntentRecord
from repro.storage.log import MessageLog


class StableStorage:
    """Everything process ``pid`` keeps on disk."""

    #: File-backed storage fires armed crash points from inside its
    #: persist (after the atomic file write); in-memory storage fires
    #: them at the intent transition itself, which models the same
    #: on-disk partial image (see :mod:`repro.storage.intents`).
    _fires_on_persist = False

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.checkpoints = CheckpointStore()
        self.log = MessageLog()
        self._tokens: list[Any] = []
        self._token_keys: set[Any] = set()
        self._kv: dict[str, Any] = {}
        self._lazy_providers: dict[str, Callable[[], Any]] = {}
        self.sync_writes = 0
        self.lazy_writes = 0
        self.token_log_dedups = 0
        self._active_intent: IntentRecord | None = None
        self._intent_audit: list[IntentRecord] = []
        self._intent_next_id = 0
        self._commit_pending: IntentRecord | None = None
        self._armed_crash_points: dict[str, dict[str, Any]] = {}
        self.intents_begun = 0
        self.intents_committed = 0
        self.intents_aborted = 0

    # ------------------------------------------------------------------
    # Token log (synchronous)
    # ------------------------------------------------------------------
    def log_token(self, token: Any, *, dedupe_key: Any = None) -> bool:
        """Synchronously persist a received token (paper Section 6.3).

        With ``dedupe_key`` (e.g. ``(origin, version)``), a token whose
        key is already logged is skipped: tokens are final per version,
        so the retained copy is byte-identical and the skip saves both
        the synchronous write and unbounded token-log growth under
        retransmitted/duplicated tokens -- the log stays O(n·f).
        Returns whether an entry was actually appended.
        """
        if dedupe_key is not None:
            if dedupe_key in self._token_keys:
                self.token_log_dedups += 1
                return False
            self._token_keys.add(dedupe_key)
        self._tokens.append(token)
        self.sync_writes += 1
        return True

    @property
    def tokens(self) -> list[Any]:
        return list(self._tokens)

    # ------------------------------------------------------------------
    # Durable scalars
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        self._kv[key] = value
        self.sync_writes += 1

    def put_lazy(self, key: str, value: Any) -> None:
        """Buffered durable write: the value becomes durable at the next
        synchronous barrier (any :meth:`put`, token log, checkpoint or
        log mutation) or flush window, whichever comes first.  In-memory
        storage has no window, so this is :meth:`put` minus the
        synchronous-write accounting."""
        self._kv[key] = value
        self.lazy_writes += 1

    def register_lazy_provider(
        self, key: str, provider: Callable[[], Any]
    ) -> None:
        """Register a callback that yields ``key``'s current value.

        Pull model for high-churn lazy values (the transport outbox): the
        owner mutates its own structure and calls :meth:`mark_lazy_dirty`
        -- O(1) -- and the storage invokes ``provider()`` to snapshot the
        value only when it actually writes.  The push model
        (:meth:`put_lazy`) serialises a full value per mutation, which is
        O(size) per message on the send path.
        """
        self._lazy_providers[key] = provider

    def mark_lazy_dirty(self) -> None:
        """Note that some provider-backed value changed.

        In-memory storage has no write scheduling, so providers are
        materialised immediately; :class:`FileStableStorage` overrides
        this to defer the snapshot to the group-commit window.
        """
        self._materialize_providers()
        self.lazy_writes += 1

    def _materialize_providers(self) -> None:
        for key, provider in self._lazy_providers.items():
            self._kv[key] = provider()

    def get(self, key: str, default: Any = None) -> Any:
        if key in self._lazy_providers:
            return self._lazy_providers[key]()
        return self._kv.get(key, default)

    # ------------------------------------------------------------------
    # Write-ahead intents (see repro.storage.intents)
    # ------------------------------------------------------------------
    def begin_intent(self, kind: str, **payload: Any) -> IntentRecord | None:
        """Open a write-ahead intent for a multi-step durable transition.

        Memory-only: the record becomes durable by riding the *next*
        step's own persist, so a clean image never pays an extra write.
        Returns ``None`` when another intent is already active -- a
        nested transition (e.g. the log flush inside a checkpoint) rides
        under the outer intent, and the ``None``-tolerant
        :meth:`advance_intent` / :meth:`commit_intent` make the inner
        call sites unconditional.
        """
        if self._active_intent is not None:
            return None
        record = IntentRecord(
            intent_id=self._intent_next_id, kind=kind, payload=dict(payload)
        )
        self._intent_next_id += 1
        self._active_intent = record
        self._commit_pending = None
        self.intents_begun += 1
        return record

    def advance_intent(self, intent: IntentRecord | None, step: str) -> None:
        """Declare the next durable step *before* performing it, so the
        step's persist records which transition was in flight."""
        if intent is None:
            return
        if not self._fires_on_persist:
            self._fire_crash_point(f"{intent.kind}:{intent.step}")
        intent.step = step

    def commit_intent(self, intent: IntentRecord | None) -> None:
        """Retire a completed intent.  Memory-only: the transition's
        final mutation persists the intent-free image, making "committed"
        durable with no extra write."""
        if intent is None:
            return
        if not self._fires_on_persist:
            self._fire_crash_point(f"{intent.kind}:{intent.step}")
        intent.status = "committed"
        self.intents_committed += 1
        self._retire(intent)
        self._commit_pending = intent

    def abort_intent(
        self, intent: IntentRecord | None, reason: str = ""
    ) -> None:
        if intent is None:
            return
        intent.status = "aborted"
        if reason:
            intent.payload.setdefault("abort_reason", reason)
        self.intents_aborted += 1
        self._retire(intent)

    def _retire(self, intent: IntentRecord) -> None:
        if self._active_intent is intent:
            self._active_intent = None
        self._intent_audit.append(intent)
        del self._intent_audit[:-AUDIT_TAIL]

    def active_intent(self) -> IntentRecord | None:
        return self._active_intent

    def intent_audit(self) -> list[IntentRecord]:
        return list(self._intent_audit)

    # ------------------------------------------------------------------
    # Crash points (fault injection for the crash-window test matrix)
    # ------------------------------------------------------------------
    def arm_crash_point(
        self,
        point: str,
        *,
        downtime: float = 1.0,
        action: Callable[[str], None] | None = None,
    ) -> None:
        """Arm ``"<kind>:<step>"`` to fire once when that durable step
        lands.  The default action raises :class:`CrashPointReached`
        (the simulator converts it into a crash + scheduled restart);
        the live node installs a self-SIGKILL action instead."""
        self._armed_crash_points[point] = {
            "downtime": downtime,
            "action": action,
        }

    def armed_crash_points(self) -> set[str]:
        return set(self._armed_crash_points)

    def _fire_crash_point(self, point: str) -> None:
        armed = self._armed_crash_points.pop(point, None)
        if armed is None:
            return
        action = armed["action"]
        if action is not None:
            action(point)
            return
        raise CrashPointReached(point, armed["downtime"])

    # ------------------------------------------------------------------
    # Failure hook
    # ------------------------------------------------------------------
    def on_crash(self) -> int:
        """Apply crash semantics: only the volatile log buffer is lost."""
        return self.log.on_crash()
