"""Receiver-side message log with a volatile buffer.

The paper's process "stores the received messages in volatile memory and
logs it to stable storage at infrequent intervals"; at checkpoint time all
unlogged messages are force-logged, and a crash erases the volatile buffer
(creating *lost states*).  :class:`MessageLog` models exactly this.

Entries are indexed by *receive order* (0-based, monotone over the life of
the process); a checkpoint remembers the log length at the moment it was
taken, so replay after recovery is simply ``entries[checkpoint.log_position:]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class LogEntry:
    """One received message as stored in the log.

    ``meta`` carries protocol metadata needed for faithful replay (e.g. the
    FTVC the message arrived with); the substrate does not interpret it.
    """

    index: int
    msg_id: int
    src: int
    payload: Any
    meta: Any = None


class MessageLog:
    """Volatile buffer + stable suffix, per process.

    - :meth:`append` records a received message in volatile memory;
    - :meth:`flush` moves the volatile buffer to stable storage
      (asynchronous logging is modelled by the protocol scheduling periodic
      flushes);
    - :meth:`on_crash` erases the volatile buffer -- everything not yet
      flushed is gone, exactly the paper's failure model;
    - :meth:`truncate` discards a stable suffix during rollback (legal
      because a rolling-back process first flushes, so nothing is lost).
    """

    def __init__(self, on_flush: Callable[[int], None] | None = None) -> None:
        self._stable: list[LogEntry] = []
        self._volatile: list[LogEntry] = []
        self._on_flush = on_flush
        self.flush_count = 0
        # Entries garbage-collected off the front (space reclamation, paper
        # Remark 2).  Indices remain absolute receive-order positions.
        self._gc_offset = 0
        self.gc_count = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, msg_id: int, src: int, payload: Any, meta: Any = None) -> LogEntry:
        entry = LogEntry(
            index=self.total_length,
            msg_id=msg_id,
            src=src,
            payload=payload,
            meta=meta,
        )
        self._volatile.append(entry)
        return entry

    def flush(self) -> int:
        """Force the volatile buffer to stable storage.

        Returns the number of entries flushed.  Idempotent when empty.
        """
        moved = len(self._volatile)
        if moved:
            self._stable.extend(self._volatile)
            self._volatile.clear()
        self.flush_count += 1
        if self._on_flush is not None:
            self._on_flush(moved)
        return moved

    def on_crash(self) -> int:
        """A failure: the volatile buffer evaporates.

        Returns how many entries were lost.
        """
        lost = len(self._volatile)
        self._volatile.clear()
        return lost

    def truncate(self, keep: int) -> int:
        """Discard all entries with absolute index >= ``keep``.

        Used during rollback after the unlogged messages have been flushed;
        refuses to run with a non-empty volatile buffer because that would
        silently drop data the caller believes is safe.
        """
        if self._volatile:
            raise RuntimeError("truncate with unflushed volatile entries")
        local = keep - self._gc_offset
        if local < 0 or local > len(self._stable):
            raise ValueError(
                f"keep={keep} outside stable log "
                f"[{self._gc_offset}, {self.stable_length}]"
            )
        dropped = len(self._stable) - local
        del self._stable[local:]
        return dropped

    def discard_prefix(self, before: int) -> int:
        """Reclaim entries with absolute index < ``before`` (Remark 2 GC).

        Legal only once no possible recovery can replay them (the caller --
        the stability coordinator -- guarantees a newer globally-stable
        checkpoint exists).  Indices of surviving entries are unchanged.
        """
        local = before - self._gc_offset
        if local <= 0:
            return 0
        local = min(local, len(self._stable))
        del self._stable[:local]
        self._gc_offset += local
        self.gc_count += local
        return local

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def stable_length(self) -> int:
        """Absolute end position of the stable log (GC'd prefix included)."""
        return self._gc_offset + len(self._stable)

    @property
    def retained_stable_entries(self) -> int:
        """Stable entries actually held in storage (space metric)."""
        return len(self._stable)

    @property
    def volatile_length(self) -> int:
        return len(self._volatile)

    @property
    def total_length(self) -> int:
        return self.stable_length + len(self._volatile)

    def stable_entries(self, start: int = 0) -> list[LogEntry]:
        """Stable entries from absolute index ``start`` on (replay source)."""
        local = start - self._gc_offset
        if local < 0:
            raise ValueError(
                f"entries before {self._gc_offset} were garbage-collected"
            )
        return self._stable[local:]

    def all_entries(self, start: int = 0) -> list[LogEntry]:
        """Stable followed by volatile entries from absolute ``start`` on."""
        local = start - self._gc_offset
        if local < 0:
            raise ValueError(
                f"entries before {self._gc_offset} were garbage-collected"
            )
        return (self._stable + self._volatile)[local:]

    def entry(self, index: int) -> LogEntry:
        local = index - self._gc_offset
        if local < 0:
            raise ValueError(
                f"entry {index} was garbage-collected"
            )
        if local < len(self._stable):
            return self._stable[local]
        return self._volatile[local - len(self._stable)]
