"""Stable-storage substrate: checkpoints and message logs.

Models the paper's storage assumptions precisely:

- a per-process *stable storage* that survives crashes
  (:class:`~repro.storage.stable.StableStorage`);
- *checkpoints* saved to stable storage
  (:class:`~repro.storage.checkpoint.Checkpoint`);
- a receiver-side *message log* with a volatile buffer that is lost in a
  crash and an asynchronously-flushed stable suffix
  (:class:`~repro.storage.log.MessageLog`) -- the volatile/stable split is
  what makes recovery "optimistic" and creates lost states.
"""

from repro.storage.checkpoint import Checkpoint, CheckpointStore
from repro.storage.intents import CrashPointReached, IntentRecord, heal
from repro.storage.log import LogEntry, MessageLog
from repro.storage.stable import StableStorage

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "CrashPointReached",
    "IntentRecord",
    "LogEntry",
    "MessageLog",
    "StableStorage",
    "heal",
]
