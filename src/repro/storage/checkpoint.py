"""Checkpoints: periodic state saves to stable storage."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Checkpoint:
    """A recovery point.

    ``log_position`` is the receive-order index such that replaying stable
    log entries ``[log_position:]`` on top of ``snapshot`` reconstructs later
    states.  ``extras`` holds protocol data that must be restored with the
    state (the paper restores the FTVC and the history with a checkpoint).
    """

    ckpt_id: int
    time: float
    snapshot: dict[str, Any]
    log_position: int
    extras: dict[str, Any] = field(default_factory=dict)


class CheckpointStore:
    """An ordered collection of checkpoints on stable storage.

    Supports the operations the protocols need: take, latest, scan backwards
    for the maximum checkpoint satisfying a predicate (the paper's rollback
    step I), discard a suffix after rollback, and garbage-collect a prefix
    once a global recovery line has advanced.
    """

    def __init__(self) -> None:
        self._checkpoints: list[Checkpoint] = []
        self._next_id = 0
        self.taken_count = 0
        self.discarded_count = 0

    def take(
        self,
        time: float,
        snapshot: dict[str, Any],
        log_position: int,
        extras: dict[str, Any] | None = None,
    ) -> Checkpoint:
        ckpt = Checkpoint(
            ckpt_id=self._next_id,
            time=time,
            snapshot=snapshot,
            log_position=log_position,
            extras=dict(extras or {}),
        )
        self._next_id += 1
        self._checkpoints.append(ckpt)
        self.taken_count += 1
        return ckpt

    def latest(self) -> Checkpoint:
        if not self._checkpoints:
            raise RuntimeError("no checkpoint on stable storage")
        return self._checkpoints[-1]

    def __len__(self) -> int:
        return len(self._checkpoints)

    def __iter__(self):
        return iter(self._checkpoints)

    def latest_satisfying(self, predicate) -> Checkpoint | None:
        """The maximum (most recent) checkpoint for which ``predicate`` holds.

        This is the scan in the paper's Rollback step: restore the maximum
        checkpoint whose history shows it is not an orphan.
        """
        for ckpt in reversed(self._checkpoints):
            if predicate(ckpt):
                return ckpt
        return None

    def discard_after(self, ckpt: Checkpoint) -> int:
        """Drop every checkpoint strictly newer than ``ckpt`` (rollback)."""
        keep = 0
        for i, existing in enumerate(self._checkpoints):
            if existing.ckpt_id == ckpt.ckpt_id:
                keep = i + 1
                break
        else:
            raise ValueError(f"checkpoint {ckpt.ckpt_id} not in store")
        dropped = len(self._checkpoints) - keep
        del self._checkpoints[keep:]
        self.discarded_count += dropped
        return dropped

    def garbage_collect_before(self, ckpt_id: int) -> int:
        """Drop checkpoints older than ``ckpt_id`` (space reclamation,
        paper Remark 2 / Wang et al. [28])."""
        keep = [c for c in self._checkpoints if c.ckpt_id >= ckpt_id]
        dropped = len(self._checkpoints) - len(keep)
        self._checkpoints = keep
        self.discarded_count += dropped
        return dropped
