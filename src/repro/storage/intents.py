"""Write-ahead intents: crash-window audit for multi-step durable transitions.

``FileStableStorage`` persists the *entire* durable image as one atomic
file write (temp file + ``os.replace``), so a single ``put`` or ``flush``
can never be half-done.  Crash windows exist only where one *logical*
transition spans **multiple** persists -- a SIGKILL between them leaves a
partial image that is internally valid but logically inconsistent.  The
inventory of such transitions (see ``docs/DURABILITY.md``):

=====================  ============================================  ======
intent kind            steps (durable persists, in order)            heal
=====================  ============================================  ======
``checkpoint``         ``log_flushed`` -> commit rides the           abort
                       checkpoint write itself
``flush``              ``log_flushed`` -> commit rides the
                       ``stable_own`` write (Damani-Garg keeps the
                       durable clock frontier in lockstep with the
                       stable log)                                   abort
``restart``            ``token_logged`` -> commit rides the
                       restart checkpoint                            abort
``rollback``           ``log_flushed``, ``checkpoints_discarded``,
                       ``log_truncated`` -> commit rides the
                       ``stable_own`` write                          forward
``compaction``         ``checkpoints_collected`` -> commit rides
                       the log prefix discard                        forward
``operator-rollback``  ``orphans_preserved``,
                       ``checkpoints_discarded``,
                       ``log_truncated`` -> commit rides the
                       audit-record write                            forward
=====================  ============================================  ======

The journal costs **zero extra fsyncs**: ``begin_intent`` is memory-only
and the record rides the next step's own persist (same atomic file
write), ``advance_intent`` declares the upcoming step *before* its
mutation so that mutation's persist records it, and ``commit_intent``
clears the active record in memory so the transition's final mutation
makes "committed" durable.

Heal policy, applied by :func:`heal` before any other startup work:

- **Roll back** (``checkpoint``, ``flush``, ``restart``): the partial
  prefix of the transition is harmless on its own -- a flushed log with
  no checkpoint is just an early flush; a logged token with no restart
  checkpoint is re-derived idempotently (the token log dedupes by
  ``(origin, version)``).  Healing simply aborts the record.
- **Roll forward** (``rollback``, ``compaction``, ``operator-rollback``):
  the payload recorded at ``begin_intent`` names the complete target
  state (anchor checkpoint, truncation boundary, restored clock entry),
  so the remaining steps are re-applied idempotently.  Log entries
  dropped by a healed rollback are *preserved*, never deleted: they are
  copied under :data:`RECOVERED_ENTRIES_KEY` and re-presented to the
  protocol as ordinary (possibly duplicate) network messages, which
  receiver-side dedup absorbs.

Crash points are named ``"<kind>:<step>"`` plus a live-only
``"<kind>:committed"`` variant (an in-memory engine cannot produce the
committed-on-disk partial image).  :meth:`StableStorage.arm_crash_point`
arms one; the simulator turns the resulting :class:`CrashPointReached`
into a scheduled crash + restart, the live node SIGKILLs itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.stable import StableStorage

# ---------------------------------------------------------------------------
# Intent vocabulary
# ---------------------------------------------------------------------------
CHECKPOINT = "checkpoint"
FLUSH = "flush"
RESTART = "restart"
ROLLBACK = "rollback"
COMPACTION = "compaction"
OPERATOR_ROLLBACK = "operator-rollback"

#: The step every intent starts in before its first ``advance_intent``.
BEGUN = "begun"

#: Ordered durable steps per transition kind.  The *last* step's persist
#: doubles as the commit barrier (see module docstring).
INTENT_STEPS: dict[str, tuple[str, ...]] = {
    CHECKPOINT: ("log_flushed",),
    FLUSH: ("log_flushed",),
    RESTART: ("token_logged",),
    ROLLBACK: ("log_flushed", "checkpoints_discarded", "log_truncated"),
    COMPACTION: ("checkpoints_collected",),
    OPERATOR_ROLLBACK: (
        "orphans_preserved",
        "checkpoints_discarded",
        "log_truncated",
    ),
}

#: Kinds whose payload names the complete target state: heal re-applies
#: the remaining steps.  Everything else is aborted (prefix harmless).
ROLL_FORWARD_KINDS = frozenset({ROLLBACK, COMPACTION, OPERATOR_ROLLBACK})

#: Durable keys owned by the healer.  Never deleted, only emptied after
#: their contents have been handed back to the protocol / operator.
RECOVERED_ENTRIES_KEY = "intent_recovered_entries"
HEAL_LOG_KEY = "intent_heal_log"

#: How many completed/aborted intents the audit tail retains.
AUDIT_TAIL = 8
#: How many heal actions the durable heal log retains.
HEAL_LOG_TAIL = 16


def crash_points(
    kinds: tuple[str, ...] | None = None, *, include_committed: bool = False
) -> tuple[str, ...]:
    """Enumerate every crash point as ``"<kind>:<step>"`` names."""
    points: list[str] = []
    for kind, steps in INTENT_STEPS.items():
        if kinds is not None and kind not in kinds:
            continue
        points.extend(f"{kind}:{step}" for step in steps)
        if include_committed:
            points.append(f"{kind}:committed")
    return tuple(points)


_PROTOCOL_KINDS = (CHECKPOINT, FLUSH, RESTART, ROLLBACK, COMPACTION)

#: Points the simulator can hit (fired in-memory when the step would
#: persist).  ``:committed`` variants are excluded: firing after commit
#: in memory would model an image that cannot exist on disk.
SIM_CRASH_POINTS = crash_points(_PROTOCOL_KINDS)

#: Points the live engine can hit -- fired from inside ``_persist`` after
#: the atomic file write, so ``:committed`` kills land on a real
#: committed-on-disk image.
LIVE_CRASH_POINTS = crash_points(_PROTOCOL_KINDS, include_committed=True)


class CrashPointReached(Exception):
    """Raised (default action) when an armed crash point fires."""

    def __init__(self, point: str, downtime: float = 1.0) -> None:
        super().__init__(point)
        self.point = point
        self.downtime = downtime


@dataclass
class IntentRecord:
    """One in-flight (or retired) multi-step transition."""

    intent_id: int
    kind: str
    step: str = BEGUN
    payload: dict[str, Any] = field(default_factory=dict)
    status: str = "active"

    def describe(self) -> str:
        return f"{self.kind}#{self.intent_id}@{self.step}[{self.status}]"


# ---------------------------------------------------------------------------
# The startup recovery crawler
# ---------------------------------------------------------------------------
def heal(storage: "StableStorage") -> list[dict[str, Any]]:
    """Detect and repair any in-flight intent left by a crash.

    Called on a freshly (re)loaded storage image before anything reads
    it.  Returns the list of heal actions taken (empty on a clean image
    -- the overwhelmingly common case, which performs **zero** writes so
    golden traces are unaffected).  Every action is also appended to the
    durable :data:`HEAL_LOG_KEY` audit tail; that final ``put`` is the
    barrier that makes the heal itself durable.
    """
    actions: list[dict[str, Any]] = []
    intent = storage.active_intent()
    while intent is not None:
        if intent.kind in ROLL_FORWARD_KINDS:
            action = _roll_forward(storage, intent)
        else:
            action = _roll_back(storage, intent)
        actions.append(action)
        remaining = storage.active_intent()
        if remaining is intent:  # defensive: a heal must retire its intent
            storage.abort_intent(intent)
            break
        intent = remaining
    if actions:
        tail = list(storage.get(HEAL_LOG_KEY) or [])
        tail.extend(actions)
        storage.put(HEAL_LOG_KEY, tail[-HEAL_LOG_TAIL:])
    return actions


def _base_action(intent: IntentRecord) -> dict[str, Any]:
    return {
        "intent_id": intent.intent_id,
        "kind": intent.kind,
        "step": intent.step,
    }


def _roll_back(storage: "StableStorage", intent: IntentRecord) -> dict[str, Any]:
    """Abort a harmless-prefix transition (checkpoint / flush / restart)."""
    action = _base_action(intent)
    action["action"] = "rolled_back"
    storage.abort_intent(intent, reason="healed")
    return action


def _roll_forward(
    storage: "StableStorage", intent: IntentRecord
) -> dict[str, Any]:
    """Re-apply the remaining steps of a payload-complete transition."""
    action = _base_action(intent)
    payload = intent.payload
    if intent.kind == COMPACTION:
        action["action"] = "rolled_forward"
        action["checkpoints_collected"] = storage.checkpoints.garbage_collect_before(
            payload["anchor_ckpt_id"]
        )
        action["log_entries_collected"] = storage.log.discard_prefix(
            payload["anchor_position"]
        )
        storage.commit_intent(intent)
        return action

    # rollback / operator-rollback: restore the anchored frontier.
    anchor_id = payload.get("anchor_ckpt_id")
    anchor = next(
        (c for c in storage.checkpoints if c.ckpt_id == anchor_id), None
    )
    if anchor is None:
        # The anchor itself is gone -- only possible if the image predates
        # the intent (impossible by construction) or was tampered with.
        # Nothing provable to re-apply: abort and surface it in the log.
        action["action"] = "aborted"
        action["reason"] = "anchor-checkpoint-missing"
        storage.abort_intent(intent, reason="anchor-checkpoint-missing")
        return action

    action["action"] = "rolled_forward"
    action["checkpoints_discarded"] = storage.checkpoints.discard_after(anchor)
    truncate_at = payload["truncate_at"]
    if storage.log.stable_length > truncate_at:
        leftovers = list(storage.log.stable_entries(truncate_at))
        if intent.kind == ROLLBACK and leftovers:
            # Preserve, never delete: a protocol rollback re-presents
            # these to the receiver path after restart (duplicates are
            # absorbed by delivery dedup).  Operator rollbacks preserve
            # their orphans separately and *must not* re-present them.
            pending = list(storage.get(RECOVERED_ENTRIES_KEY) or [])
            seen = {entry.index for entry in pending}
            pending.extend(e for e in leftovers if e.index not in seen)
            storage.put(RECOVERED_ENTRIES_KEY, pending)
        action["log_entries_truncated"] = storage.log.truncate(truncate_at)
        action["log_entries_preserved"] = len(leftovers)
    else:
        action["log_entries_truncated"] = 0
        action["log_entries_preserved"] = 0
    stable_own = payload.get("stable_own")
    if stable_own is not None:
        storage.put("stable_own", stable_own)
    storage.commit_intent(intent)
    return action
