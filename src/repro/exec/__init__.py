"""Parallel execution engine: fan seeded runs out across worker processes.

Every workload in this repo -- stress sweeps, benchmark repeats, the
Table 1 protocol matrix -- is a list of *independent, seed-deterministic*
tasks, so they parallelise trivially and, crucially, *verifiably*: the
engine merges results in submission order and the equivalence tests assert
that ``jobs=N`` is bit-identical to ``jobs=1``.  Quick tour::

    from repro.exec import ParallelRunner, ResultCache, Task

    runner = ParallelRunner(jobs=4, cache=ResultCache(".repro-cache"))
    outcomes = runner.map([
        Task(fn="repro.stress.sweep:exec_run_case",
             payload={"case": {...}, "theorem_max_states": 60})
    ])

Workers are crash-isolated: a schedule that segfaults its worker fails
that one task, and a replacement process keeps draining the rest of the
queue.  See ``docs/PARALLELISM.md`` for the worker model, the
determinism contract, and the cache-key definition.

:func:`run_exec_bench` (lazy: it pulls in the stress harness) measures the
serial-vs-parallel speedup on a seed block and writes ``BENCH_exec.json``.
"""

from typing import Any

from repro.exec.cache import ResultCache
from repro.exec.runner import ParallelRunner, ProcessBudget
from repro.exec.tasks import (
    Task,
    TaskOutcome,
    code_fingerprint,
    resolve_fn,
    task_key,
)

__all__ = [
    "ExecBenchResult",
    "ParallelRunner",
    "ProcessBudget",
    "ResultCache",
    "Task",
    "TaskOutcome",
    "code_fingerprint",
    "resolve_fn",
    "run_exec_bench",
    "task_key",
    "write_exec_bench_json",
]

_LAZY = {
    "ExecBenchResult": "repro.exec.bench",
    "run_exec_bench": "repro.exec.bench",
    "write_exec_bench_json": "repro.exec.bench",
}


def __getattr__(name: str) -> Any:
    # The bench module imports the stress harness, which imports this
    # package for the runner; resolving it lazily (PEP 562, same pattern
    # as repro.obs) keeps the import graph acyclic.
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.exec' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
