"""On-disk result cache for the parallel execution engine.

Maps :func:`~repro.exec.tasks.task_key` digests to pickled task results so
repeated sweeps and benchmark matrices skip seeds they have already graded.
Entries live under ``root/<key[:2]>/<key>.pkl`` (the two-character fan-out
keeps directories small for multi-thousand-seed sweeps) and are written
atomically -- a temp file in the same directory, then ``os.replace`` -- so
a killed run can never leave a truncated entry that a later run would
deserialise.

Anything unreadable (corrupt pickle, wrong permissions, races with a
concurrent ``clear``) is treated as a miss; the cache is an accelerator,
never a source of truth.  Invalidation is handled upstream: the key itself
embeds a fingerprint of the entire ``repro`` source tree, so stale code
can never produce a hit.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any


class ResultCache:
    """Pickle-per-key cache rooted at a directory of the caller's choice."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, Any]:
        """Return ``(hit, value)``; any read/deserialise problem is a miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
