"""Serial-vs-parallel benchmark for the execution engine.

:func:`run_exec_bench` runs the same stress seed block twice -- once with
``jobs=1`` and once with ``jobs=N`` -- and reports two things:

- **equivalence**: every per-seed :class:`~repro.stress.sweep.CaseResult`
  (including its ``trace_signature``) must be identical between the two
  runs.  A speedup that changes results is a bug, not a feature.
- **speedup**: serial wall time over parallel wall time.  On a multi-core
  runner this should comfortably exceed 1; CI fails the build when
  parallel is slower than serial (see ``.github/workflows/ci.yml``).

:func:`write_exec_bench_json` persists the measurement as
``BENCH_exec.json`` (format ``repro-exec-bench-v1``) next to the repo's
other benchmark artifacts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from repro.stress.profiles import PROFILES, StressProfile
from repro.stress.sweep import CaseResult, sweep

EXEC_BENCH_FORMAT = "repro-exec-bench-v1"


@dataclass
class ExecBenchResult:
    """One serial-vs-parallel measurement over a stress seed block."""

    schedules: int
    jobs: int
    profile: str
    base_seed: int
    serial_wall_s: float
    parallel_wall_s: float
    identical: bool
    mismatched_seeds: list[int] = field(default_factory=list)
    failures: int = 0
    cpu_count: int = 1
    # ProcessBudget slots the parallel leg ran under (None = unlimited
    # admission, the pre-budget behaviour).
    budget_slots: int | None = None

    @property
    def speedup(self) -> float:
        if self.parallel_wall_s <= 0:
            return 0.0
        return self.serial_wall_s / self.parallel_wall_s

    def to_dict(self) -> dict:
        return {
            "format": EXEC_BENCH_FORMAT,
            "schedules": self.schedules,
            "jobs": self.jobs,
            "profile": self.profile,
            "base_seed": self.base_seed,
            "serial_wall_s": round(self.serial_wall_s, 4),
            "parallel_wall_s": round(self.parallel_wall_s, 4),
            "speedup": round(self.speedup, 3),
            "identical": self.identical,
            "mismatched_seeds": list(self.mismatched_seeds),
            "failures": self.failures,
            "cpu_count": self.cpu_count,
            "budget_slots": self.budget_slots,
        }

    def summary(self) -> str:
        verdict = (
            "bit-identical results"
            if self.identical
            else f"MISMATCH on seeds {self.mismatched_seeds}"
        )
        return (
            f"exec bench: {self.schedules} schedules "
            f"(profile={self.profile}, seeds {self.base_seed}.."
            f"{self.base_seed + self.schedules - 1})\n"
            f"  serial   (jobs=1): {self.serial_wall_s:.2f}s\n"
            f"  parallel (jobs={self.jobs}): {self.parallel_wall_s:.2f}s\n"
            f"  speedup: {self.speedup:.2f}x on {self.cpu_count} CPU(s)"
            + (
                f" (budget {self.budget_slots} slots)\n"
                if self.budget_slots
                else "\n"
            )
            + f"  {verdict}, {self.failures} failing schedule(s)"
        )


def _collecting_sweep(
    schedules: int,
    base_seed: int,
    profile: StressProfile,
    jobs: int,
    budget_slots: int | None = None,
) -> tuple[list[CaseResult], float]:
    """Run a sweep capturing *every* per-seed result, not just failures.

    Results come back keyed by seed (parallel sweeps report progress in
    completion order) and are returned sorted, so the two runs compare
    positionally.  Shrinking is off: the bench measures raw execution.
    """
    by_seed: dict[int, CaseResult] = {}

    def collect(_index: int, result: CaseResult) -> None:
        by_seed[result.case.seed] = result

    started = perf_counter()
    sweep(
        schedules,
        base_seed=base_seed,
        profile=profile,
        shrink=False,
        jobs=jobs,
        budget_slots=budget_slots,
        progress=collect,
    )
    wall_s = perf_counter() - started
    return [by_seed[seed] for seed in sorted(by_seed)], wall_s


def run_exec_bench(
    schedules: int = 200,
    *,
    jobs: int = 4,
    profile: StressProfile | str = "quick",
    base_seed: int = 0,
    budget_slots: int | None = None,
) -> ExecBenchResult:
    """Measure serial vs parallel over one seed block; verify equivalence.

    ``budget_slots`` puts the parallel leg under a
    :class:`~repro.exec.runner.ProcessBudget` (admission-controlled
    scheduling); ``None`` keeps unlimited admission.  Stress cases weigh
    one slot each, so a budget of at least ``jobs`` changes nothing and a
    smaller one caps effective concurrency -- either way the results must
    stay bit-identical to serial.
    """
    if isinstance(profile, str):
        profile = PROFILES[profile]
    if jobs < 2:
        raise ValueError(f"exec bench needs jobs >= 2, got {jobs}")

    serial, serial_wall_s = _collecting_sweep(
        schedules, base_seed, profile, jobs=1
    )
    parallel, parallel_wall_s = _collecting_sweep(
        schedules, base_seed, profile, jobs=jobs, budget_slots=budget_slots
    )

    mismatched = [
        s.case.seed
        for s, p in zip(serial, parallel)
        if s != p
    ]
    return ExecBenchResult(
        schedules=schedules,
        jobs=jobs,
        profile=profile.name,
        base_seed=base_seed,
        serial_wall_s=serial_wall_s,
        parallel_wall_s=parallel_wall_s,
        identical=len(serial) == len(parallel) and not mismatched,
        mismatched_seeds=mismatched,
        failures=sum(1 for s in serial if s.failed),
        cpu_count=os.cpu_count() or 1,
        budget_slots=budget_slots,
    )


def write_exec_bench_json(result: ExecBenchResult, path: Path | str) -> Path:
    """Write the measurement as ``BENCH_exec.json``-style JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    return path
