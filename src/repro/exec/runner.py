"""The parallel execution engine: a crash-isolated worker pool.

:class:`ParallelRunner` fans a list of :class:`~repro.exec.tasks.Task`
descriptors out over ``jobs`` worker processes and merges the outcomes
back **in submission order**, so a parallel sweep reports results in
exactly the order the serial loop would -- the determinism contract that
the parallel-vs-serial equivalence tests pin down.

Worker model (see ``docs/PARALLELISM.md``):

- the parent posts every pending task to a shared queue, plus one ``None``
  sentinel per worker;
- each worker loops ``get -> announce start -> run -> report done``,
  reporting over a lock-serialised pipe whose writes complete *before*
  the next instruction runs -- so a worker that dies mid-task has always
  durably announced which task it was running;
- a worker that *dies* (segfault, OOM-kill, ``os._exit``) takes down only
  that announced task: the parent drains the report pipe, notices the
  dead process, records a ``crashed`` outcome for the one task, and
  spawns a replacement worker that keeps draining the queue.  One
  pathological schedule therefore fails one task, never the pool;
- a worker exits cleanly only by consuming a sentinel, so once every
  sentinel is consumed the task queue is provably empty and any still
  unresolved task (lost in the dequeue-to-announce window) can be
  re-posted without risking double execution.

``jobs <= 1`` runs everything inline in the parent (no processes, no
pickling) through the same cache and outcome plumbing, which is also the
degenerate case the equivalence oracle compares against.

Results are cached per task when a :class:`~repro.exec.cache.ResultCache`
is supplied: hits skip execution entirely, and only *successful* values
are ever written back (errors and crashes may be environmental and must
stay retryable).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import traceback
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Sequence

from repro.exec.cache import ResultCache
from repro.exec.tasks import Task, TaskOutcome, resolve_fn, task_key

#: Progress callback: (number of tasks finished so far, outcome just done).
ProgressFn = Callable[[int, TaskOutcome], None]


@dataclass(frozen=True)
class ProcessBudget:
    """Admission cap for slot-weighted scheduling (see PARALLELISM.md).

    ``slots`` is the total number of OS processes the runner may have
    working at once.  Every :class:`~repro.exec.tasks.Task` declares its
    weight (``Task.slots``); the pool admits tasks in submission order
    while their combined weight fits.  This is what lets one runner mix
    ordinary one-process simulations (1 slot) with live-cluster tasks
    that each spawn an n-node mesh (``n + 1`` slots) without
    oversubscribing the machine: an n=64 scale-bench scenario takes 65
    slots, so on a 64-core host nothing else is admitted beside it,
    while sixteen n=4 scenarios (5 slots each) would need 80 and are
    throttled to twelve at a time.

    A task *heavier than the whole budget* is still admitted -- alone --
    once nothing else holds slots: progress beats strictness, and the
    alternative (rejecting it) would make ``n + 1 > slots`` un-runnable
    rather than merely slow.

    ``ProcessBudget.default()`` sizes the budget to the machine
    (``os.cpu_count()``).
    """

    slots: int

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError(f"budget slots must be >= 1, got {self.slots}")

    @classmethod
    def default(cls) -> "ProcessBudget":
        return cls(max(os.cpu_count() or 1, 1))


def _worker_main(
    worker_id: int,
    sys_path: list[str],
    task_queue: Any,
    report: Any,
    report_lock: Any,
) -> None:
    """Worker loop: run tasks until a ``None`` sentinel arrives.

    ``sys_path`` replays the parent's import path so the ``spawn`` start
    method (no inherited interpreter state) finds the repro package even
    when it was made importable via ``PYTHONPATH=src``.  Reports go over
    ``report`` (one pipe writer shared by all workers) under
    ``report_lock``; ``Connection.send`` returns only once the message is
    in the pipe, which is what makes crash attribution exact.
    """
    for entry in reversed(sys_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)

    def send(kind: str, index: int, payload: Any = None) -> None:
        with report_lock:
            report.send((kind, worker_id, index, payload))

    while True:
        item = task_queue.get()
        if item is None:
            send("exit", -1)
            return
        index, fn_ref, payload = item
        send("start", index)
        started = perf_counter()
        try:
            value = resolve_fn(fn_ref)(payload)
            result = (value, None, perf_counter() - started)
        except BaseException:
            result = (
                None,
                traceback.format_exc(limit=20),
                perf_counter() - started,
            )
        send("done", index, result)


class ParallelRunner:
    """Run independent tasks across worker processes, deterministically.

    Parameters:

    - ``jobs`` -- worker process count; ``<= 1`` executes inline;
    - ``cache`` -- optional :class:`ResultCache` consulted per task;
    - ``budget`` -- optional :class:`ProcessBudget`; when set, tasks are
      *admitted* to the worker queue only while their combined
      ``Task.slots`` weight fits, so multi-process tasks cannot
      oversubscribe the machine.  ``None`` (the default) admits
      everything up front -- the historical behaviour;
    - ``start_method`` -- multiprocessing start method; defaults to
      ``fork`` where available (cheap on Linux) and ``spawn`` elsewhere.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: ResultCache | None = None,
        budget: ProcessBudget | None = None,
        start_method: str | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.budget = budget
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def map(
        self,
        tasks: Sequence[Task],
        *,
        progress: ProgressFn | None = None,
    ) -> list[TaskOutcome]:
        """Run every task; return outcomes in submission order."""
        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        done_count = 0

        def finish(outcome: TaskOutcome) -> None:
            nonlocal done_count
            outcomes[outcome.index] = outcome
            done_count += 1
            if progress is not None:
                progress(done_count, outcome)

        pending: list[int] = []
        for index, task in enumerate(tasks):
            hit_outcome = self._try_cache(index, task)
            if hit_outcome is not None:
                finish(hit_outcome)
            else:
                pending.append(index)

        if self.jobs <= 1 or len(pending) <= 1:
            for index in pending:
                finish(self._run_inline(index, tasks[index]))
        else:
            for outcome in self._run_pool(tasks, pending):
                finish(outcome)

        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _try_cache(self, index: int, task: Task) -> TaskOutcome | None:
        if self.cache is None or not task.cacheable:
            return None
        hit, value = self.cache.get(task_key(task))
        if not hit:
            return None
        return TaskOutcome(
            index=index, value=value, cached=True, label=task.label
        )

    def _store(self, task: Task, outcome: TaskOutcome) -> None:
        if (
            self.cache is not None
            and task.cacheable
            and outcome.ok
            and not outcome.cached
        ):
            self.cache.put(task_key(task), outcome.value)

    # ------------------------------------------------------------------
    # Inline (jobs=1) path
    # ------------------------------------------------------------------
    def _run_inline(self, index: int, task: Task) -> TaskOutcome:
        started = perf_counter()
        try:
            value = resolve_fn(task.fn)(task.payload)
            outcome = TaskOutcome(
                index=index,
                value=value,
                wall_s=perf_counter() - started,
                label=task.label,
            )
        except Exception:
            outcome = TaskOutcome(
                index=index,
                error=traceback.format_exc(limit=20),
                wall_s=perf_counter() - started,
                label=task.label,
            )
        self._store(task, outcome)
        return outcome

    # ------------------------------------------------------------------
    # Worker-pool path
    # ------------------------------------------------------------------
    def _run_pool(self, tasks: Sequence[Task], pending: list[int]):
        """Yield outcomes for ``pending`` task indices as they complete."""
        task_queue = self._ctx.Queue()
        reader, writer = self._ctx.Pipe(duplex=False)
        report_lock = self._ctx.Lock()
        worker_count = min(self.jobs, len(pending))
        slots_cap = self.budget.slots if self.budget is not None else None
        if slots_cap is not None:
            # Each admitted task holds >= 1 slot, so concurrency can
            # never exceed the budget; extra workers would only idle.
            worker_count = max(1, min(worker_count, slots_cap))
        sentinels_posted = 0
        clean_exits = 0

        # Admission control.  Without a budget, the first admit() call
        # posts every task followed by the sentinels -- exactly the old
        # up-front behaviour.  With a budget, tasks become visible to the
        # workers in submission order only while their combined slot
        # weight fits, and the sentinels follow the last admission; slots
        # are released as tasks resolve (done, crashed, or failed).
        to_post: deque[int] = deque(pending)
        admitted: dict[int, int] = {}       # task index -> held slots
        admitted_slots = 0
        sentinels_armed = True
        # Flush mode guards against the silent-loss window *while
        # admission is still blocked*: a worker that dies between
        # dequeuing a task and announcing it leaves the task's slots
        # held forever, and with ``to_post`` non-empty the end-of-run
        # sentinel proof would never run.  Entering flush posts the
        # sentinels immediately (pausing admission); once every sentinel
        # is consumed the queue is provably empty, so any admitted task
        # still unresolved was lost and can safely rejoin ``to_post``.
        flushing = False

        def admit() -> None:
            nonlocal admitted_slots, sentinels_armed, sentinels_posted
            while to_post and not flushing:
                index = to_post[0]
                need = tasks[index].slots
                if (
                    slots_cap is not None
                    and admitted_slots > 0
                    and admitted_slots + need > slots_cap
                ):
                    # Oversized tasks (need > slots_cap) still pass the
                    # admitted_slots > 0 guard eventually: they run
                    # alone, they are never starved.
                    break
                to_post.popleft()
                admitted[index] = need
                admitted_slots += need
                task_queue.put(
                    (index, tasks[index].fn, tasks[index].payload)
                )
            if (not to_post or flushing) and sentinels_armed:
                for _ in range(worker_count):
                    task_queue.put(None)
                sentinels_posted += worker_count
                sentinels_armed = False

        def enter_flush() -> None:
            nonlocal flushing
            if flushing or not to_post:
                # With to_post empty the sentinels are already behind the
                # last task, so the normal end-of-run proof covers loss.
                return
            flushing = True
            admit()     # posts the sentinel round now

        def release(index: int) -> None:
            nonlocal admitted_slots
            held = admitted.pop(index, None)
            if held is not None:
                admitted_slots -= held

        workers: dict[int, Any] = {}
        in_flight: dict[int, int | None] = {}      # worker id -> task index
        next_worker_id = 0
        # Every crash consumes one respawn; the bound is far above anything
        # a healthy run needs, purely so a machine that kills every child
        # (e.g. an aggressive OOM killer) terminates instead of spinning.
        respawn_budget = 2 * len(pending) + 4 * worker_count

        def spawn() -> None:
            nonlocal next_worker_id
            wid = next_worker_id
            next_worker_id += 1
            proc = self._ctx.Process(
                target=_worker_main,
                args=(wid, list(sys.path), task_queue, writer, report_lock),
                daemon=True,
            )
            proc.start()
            workers[wid] = proc
            in_flight[wid] = None

        unresolved = set(pending)
        try:
            while unresolved:
                admit()
                # Keep the pool at strength while work remains.
                target = min(worker_count, len(unresolved))
                while len(workers) < target and respawn_budget > 0:
                    respawn_budget -= 1
                    spawn()
                if not workers:
                    # Respawn budget exhausted: fail leftovers, don't hang.
                    for index in sorted(unresolved):
                        release(index)
                        yield TaskOutcome(
                            index=index,
                            crashed=True,
                            error="worker pool exhausted its respawn "
                            "budget before this task completed",
                            label=tasks[index].label,
                        )
                    unresolved.clear()
                    break
                if reader.poll(0.2):
                    kind, wid, index, payload = reader.recv()
                    if kind == "start":
                        in_flight[wid] = index
                    elif kind == "done":
                        in_flight[wid] = None
                        release(index)
                        if index in unresolved:
                            unresolved.discard(index)
                            value, error, wall_s = payload
                            outcome = TaskOutcome(
                                index=index,
                                value=value,
                                error=error,
                                wall_s=wall_s,
                                label=tasks[index].label,
                            )
                            self._store(tasks[index], outcome)
                            yield outcome
                    elif kind == "exit":
                        clean_exits += 1
                        proc = workers.pop(wid, None)
                        in_flight.pop(wid, None)
                        if proc is not None:
                            proc.join(timeout=5.0)
                    continue
                # Pipe drained: dead workers have no unread announcements,
                # so attributing their in-flight task as crashed is exact.
                # A death *without* an announced task may have silently
                # consumed one -- if admission is still blocked, enter
                # flush mode so its slots cannot deadlock the pool.
                for outcome in self._reap_dead(
                    workers,
                    in_flight,
                    tasks,
                    unresolved,
                    on_unannounced=enter_flush,
                ):
                    release(outcome.index)
                    yield outcome
                # A worker can die *between* dequeuing a task and
                # announcing it; such a task is silently lost.  Once every
                # sentinel has been consumed the queue is provably empty,
                # so leftovers can be re-posted without double execution.
                # Re-posting goes back through admit(): leftovers rejoin
                # the admission queue (slots released first) and a fresh
                # round of sentinels is armed behind them.
                busy = any(index is not None for index in in_flight.values())
                if (
                    clean_exits == sentinels_posted
                    and sentinels_posted > 0
                    and unresolved
                    and not busy
                ):
                    if flushing:
                        # Queue proven empty: every admitted-but-undone
                        # task was lost.  Return it to the admission
                        # queue in submission order and resume.
                        lost = sorted(set(to_post) | set(admitted))
                        for index in list(admitted):
                            release(index)
                        to_post.clear()
                        to_post.extend(lost)
                        flushing = False
                        sentinels_armed = True
                    elif not to_post:
                        for index in sorted(unresolved):
                            release(index)
                            to_post.append(index)
                        sentinels_armed = True
        finally:
            for proc in workers.values():
                proc.terminate()
            for proc in workers.values():
                proc.join(timeout=5.0)
            writer.close()
            reader.close()
            task_queue.close()
            task_queue.cancel_join_thread()

    def _reap_dead(
        self,
        workers: dict[int, Any],
        in_flight: dict[int, int | None],
        tasks: Sequence[Task],
        unresolved: set[int],
        on_unannounced: Callable[[], None] | None = None,
    ):
        """Attribute dead workers' announced tasks as crashed outcomes.

        ``on_unannounced`` fires for each dead worker with no announced
        task -- the caller's hook for the silent-loss window (the worker
        may have dequeued a task it never got to announce).
        """
        for wid in list(workers):
            proc = workers[wid]
            if proc.is_alive():
                continue
            exitcode = proc.exitcode
            workers.pop(wid)
            index = in_flight.pop(wid, None)
            if index is None:
                if on_unannounced is not None:
                    on_unannounced()
                continue
            if index in unresolved:
                unresolved.discard(index)
                yield TaskOutcome(
                    index=index,
                    crashed=True,
                    error=(
                        f"worker process died (exit code {exitcode}) while "
                        f"running task {index} "
                        f"({tasks[index].label or tasks[index].fn})"
                    ),
                    label=tasks[index].label,
                )
