"""The parallel execution engine: a crash-isolated worker pool.

:class:`ParallelRunner` fans a list of :class:`~repro.exec.tasks.Task`
descriptors out over ``jobs`` worker processes and merges the outcomes
back **in submission order**, so a parallel sweep reports results in
exactly the order the serial loop would -- the determinism contract that
the parallel-vs-serial equivalence tests pin down.

Worker model (see ``docs/PARALLELISM.md``):

- the parent posts every pending task to a shared queue, plus one ``None``
  sentinel per worker;
- each worker loops ``get -> announce start -> run -> report done``,
  reporting over a lock-serialised pipe whose writes complete *before*
  the next instruction runs -- so a worker that dies mid-task has always
  durably announced which task it was running;
- a worker that *dies* (segfault, OOM-kill, ``os._exit``) takes down only
  that announced task: the parent drains the report pipe, notices the
  dead process, records a ``crashed`` outcome for the one task, and
  spawns a replacement worker that keeps draining the queue.  One
  pathological schedule therefore fails one task, never the pool;
- a worker exits cleanly only by consuming a sentinel, so once every
  sentinel is consumed the task queue is provably empty and any still
  unresolved task (lost in the dequeue-to-announce window) can be
  re-posted without risking double execution.

``jobs <= 1`` runs everything inline in the parent (no processes, no
pickling) through the same cache and outcome plumbing, which is also the
degenerate case the equivalence oracle compares against.

Results are cached per task when a :class:`~repro.exec.cache.ResultCache`
is supplied: hits skip execution entirely, and only *successful* values
are ever written back (errors and crashes may be environmental and must
stay retryable).
"""

from __future__ import annotations

import multiprocessing
import sys
import traceback
from time import perf_counter
from typing import Any, Callable, Sequence

from repro.exec.cache import ResultCache
from repro.exec.tasks import Task, TaskOutcome, resolve_fn, task_key

#: Progress callback: (number of tasks finished so far, outcome just done).
ProgressFn = Callable[[int, TaskOutcome], None]


def _worker_main(
    worker_id: int,
    sys_path: list[str],
    task_queue: Any,
    report: Any,
    report_lock: Any,
) -> None:
    """Worker loop: run tasks until a ``None`` sentinel arrives.

    ``sys_path`` replays the parent's import path so the ``spawn`` start
    method (no inherited interpreter state) finds the repro package even
    when it was made importable via ``PYTHONPATH=src``.  Reports go over
    ``report`` (one pipe writer shared by all workers) under
    ``report_lock``; ``Connection.send`` returns only once the message is
    in the pipe, which is what makes crash attribution exact.
    """
    for entry in reversed(sys_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)

    def send(kind: str, index: int, payload: Any = None) -> None:
        with report_lock:
            report.send((kind, worker_id, index, payload))

    while True:
        item = task_queue.get()
        if item is None:
            send("exit", -1)
            return
        index, fn_ref, payload = item
        send("start", index)
        started = perf_counter()
        try:
            value = resolve_fn(fn_ref)(payload)
            result = (value, None, perf_counter() - started)
        except BaseException:
            result = (
                None,
                traceback.format_exc(limit=20),
                perf_counter() - started,
            )
        send("done", index, result)


class ParallelRunner:
    """Run independent tasks across worker processes, deterministically.

    Parameters:

    - ``jobs`` -- worker process count; ``<= 1`` executes inline;
    - ``cache`` -- optional :class:`ResultCache` consulted per task;
    - ``start_method`` -- multiprocessing start method; defaults to
      ``fork`` where available (cheap on Linux) and ``spawn`` elsewhere.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: ResultCache | None = None,
        start_method: str | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def map(
        self,
        tasks: Sequence[Task],
        *,
        progress: ProgressFn | None = None,
    ) -> list[TaskOutcome]:
        """Run every task; return outcomes in submission order."""
        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        done_count = 0

        def finish(outcome: TaskOutcome) -> None:
            nonlocal done_count
            outcomes[outcome.index] = outcome
            done_count += 1
            if progress is not None:
                progress(done_count, outcome)

        pending: list[int] = []
        for index, task in enumerate(tasks):
            hit_outcome = self._try_cache(index, task)
            if hit_outcome is not None:
                finish(hit_outcome)
            else:
                pending.append(index)

        if self.jobs <= 1 or len(pending) <= 1:
            for index in pending:
                finish(self._run_inline(index, tasks[index]))
        else:
            for outcome in self._run_pool(tasks, pending):
                finish(outcome)

        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _try_cache(self, index: int, task: Task) -> TaskOutcome | None:
        if self.cache is None or not task.cacheable:
            return None
        hit, value = self.cache.get(task_key(task))
        if not hit:
            return None
        return TaskOutcome(
            index=index, value=value, cached=True, label=task.label
        )

    def _store(self, task: Task, outcome: TaskOutcome) -> None:
        if (
            self.cache is not None
            and task.cacheable
            and outcome.ok
            and not outcome.cached
        ):
            self.cache.put(task_key(task), outcome.value)

    # ------------------------------------------------------------------
    # Inline (jobs=1) path
    # ------------------------------------------------------------------
    def _run_inline(self, index: int, task: Task) -> TaskOutcome:
        started = perf_counter()
        try:
            value = resolve_fn(task.fn)(task.payload)
            outcome = TaskOutcome(
                index=index,
                value=value,
                wall_s=perf_counter() - started,
                label=task.label,
            )
        except Exception:
            outcome = TaskOutcome(
                index=index,
                error=traceback.format_exc(limit=20),
                wall_s=perf_counter() - started,
                label=task.label,
            )
        self._store(task, outcome)
        return outcome

    # ------------------------------------------------------------------
    # Worker-pool path
    # ------------------------------------------------------------------
    def _run_pool(self, tasks: Sequence[Task], pending: list[int]):
        """Yield outcomes for ``pending`` task indices as they complete."""
        task_queue = self._ctx.Queue()
        reader, writer = self._ctx.Pipe(duplex=False)
        report_lock = self._ctx.Lock()
        worker_count = min(self.jobs, len(pending))
        for index in pending:
            task_queue.put((index, tasks[index].fn, tasks[index].payload))
        for _ in range(worker_count):
            task_queue.put(None)
        sentinels_posted = worker_count
        clean_exits = 0

        workers: dict[int, Any] = {}
        in_flight: dict[int, int | None] = {}      # worker id -> task index
        next_worker_id = 0
        # Every crash consumes one respawn; the bound is far above anything
        # a healthy run needs, purely so a machine that kills every child
        # (e.g. an aggressive OOM killer) terminates instead of spinning.
        respawn_budget = 2 * len(pending) + 4 * worker_count

        def spawn() -> None:
            nonlocal next_worker_id
            wid = next_worker_id
            next_worker_id += 1
            proc = self._ctx.Process(
                target=_worker_main,
                args=(wid, list(sys.path), task_queue, writer, report_lock),
                daemon=True,
            )
            proc.start()
            workers[wid] = proc
            in_flight[wid] = None

        unresolved = set(pending)
        try:
            while unresolved:
                # Keep the pool at strength while work remains.
                target = min(worker_count, len(unresolved))
                while len(workers) < target and respawn_budget > 0:
                    respawn_budget -= 1
                    spawn()
                if not workers:
                    # Respawn budget exhausted: fail leftovers, don't hang.
                    for index in sorted(unresolved):
                        yield TaskOutcome(
                            index=index,
                            crashed=True,
                            error="worker pool exhausted its respawn "
                            "budget before this task completed",
                            label=tasks[index].label,
                        )
                    unresolved.clear()
                    break
                if reader.poll(0.2):
                    kind, wid, index, payload = reader.recv()
                    if kind == "start":
                        in_flight[wid] = index
                    elif kind == "done":
                        in_flight[wid] = None
                        if index in unresolved:
                            unresolved.discard(index)
                            value, error, wall_s = payload
                            outcome = TaskOutcome(
                                index=index,
                                value=value,
                                error=error,
                                wall_s=wall_s,
                                label=tasks[index].label,
                            )
                            self._store(tasks[index], outcome)
                            yield outcome
                    elif kind == "exit":
                        clean_exits += 1
                        proc = workers.pop(wid, None)
                        in_flight.pop(wid, None)
                        if proc is not None:
                            proc.join(timeout=5.0)
                    continue
                # Pipe drained: dead workers have no unread announcements,
                # so attributing their in-flight task as crashed is exact.
                yield from self._reap_dead(
                    workers, in_flight, tasks, unresolved
                )
                # A worker can die *between* dequeuing a task and
                # announcing it; such a task is silently lost.  Once every
                # sentinel has been consumed the queue is provably empty,
                # so leftovers can be re-posted without double execution.
                busy = any(index is not None for index in in_flight.values())
                if clean_exits == sentinels_posted and unresolved and not busy:
                    refill = min(worker_count, len(unresolved))
                    for index in sorted(unresolved):
                        task_queue.put(
                            (index, tasks[index].fn, tasks[index].payload)
                        )
                    for _ in range(refill):
                        task_queue.put(None)
                    sentinels_posted += refill
        finally:
            for proc in workers.values():
                proc.terminate()
            for proc in workers.values():
                proc.join(timeout=5.0)
            writer.close()
            reader.close()
            task_queue.close()
            task_queue.cancel_join_thread()

    def _reap_dead(
        self,
        workers: dict[int, Any],
        in_flight: dict[int, int | None],
        tasks: Sequence[Task],
        unresolved: set[int],
    ):
        """Attribute dead workers' announced tasks as crashed outcomes."""
        for wid in list(workers):
            proc = workers[wid]
            if proc.is_alive():
                continue
            exitcode = proc.exitcode
            workers.pop(wid)
            index = in_flight.pop(wid, None)
            if index is not None and index in unresolved:
                unresolved.discard(index)
                yield TaskOutcome(
                    index=index,
                    crashed=True,
                    error=(
                        f"worker process died (exit code {exitcode}) while "
                        f"running task {index} "
                        f"({tasks[index].label or tasks[index].fn})"
                    ),
                    label=tasks[index].label,
                )
