"""Task descriptors for the parallel execution engine.

A :class:`Task` is the unit of work :class:`~repro.exec.runner.ParallelRunner`
ships to a worker process: a *reference* to a module-level callable (as a
``"module:function"`` string, so it pickles by name under any start method)
plus a JSON-safe plain-data payload.  Keeping the payload plain data buys
three things at once:

- workers can rebuild the real objects themselves (no pickling of live
  simulators or protocol instances across process boundaries);
- the task has a *stable identity* -- :func:`task_key` hashes the callable
  reference and the canonical JSON of the payload, which is what the
  on-disk :class:`~repro.exec.cache.ResultCache` is keyed by;
- two runs with the same payload are guaranteed to describe the same
  computation, which is the determinism contract the parallel-vs-serial
  equivalence tests enforce.

Cache keys also fold in :func:`code_fingerprint`, a digest of every
``repro`` source file, so any code change invalidates every cached result
(see ``docs/PARALLELISM.md`` for the caveats).
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable


@dataclass(frozen=True)
class Task:
    """One unit of work for the engine.

    ``fn`` is a ``"package.module:callable"`` reference resolved *inside*
    the worker; ``payload`` is the callable's single argument and must be
    JSON-serialisable.  ``label`` is only for progress lines; ``cacheable``
    opts the task out of the result cache (timing measurements must never
    be served from disk).

    ``slots`` is the task's weight against a
    :class:`~repro.exec.runner.ProcessBudget`: how many OS processes the
    task occupies while it runs.  An ordinary in-worker simulation is 1;
    a live-cluster task that spawns an n-node mesh is worth ``n + 1``
    (the nodes plus the supervising worker).  Scheduling weight only --
    deliberately *not* part of :func:`task_key`, because the computation
    (fn + payload) is identical however it is scheduled, and cached
    results must survive budget tuning.
    """

    fn: str
    payload: Any = None
    label: str = ""
    cacheable: bool = True
    slots: int = 1

    def __post_init__(self) -> None:
        if ":" not in self.fn:
            raise ValueError(
                f"task fn must be 'module:callable', got {self.fn!r}"
            )
        if self.slots < 1:
            raise ValueError(f"task slots must be >= 1, got {self.slots}")


@dataclass
class TaskOutcome:
    """What happened to one task, merged back in submission order."""

    index: int
    value: Any = None
    error: str | None = None      # traceback text if the callable raised
    crashed: bool = False         # the worker process died mid-task
    cached: bool = False          # served from the on-disk result cache
    wall_s: float = 0.0
    label: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None and not self.crashed


def resolve_fn(ref: str) -> Callable[[Any], Any]:
    """Import and return the callable a ``"module:function"`` ref names."""
    module_name, _, attr = ref.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in attr.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"{ref!r} does not name a callable")
    return obj


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``repro`` source file (path + contents).

    Cache entries are only valid for the exact code that produced them;
    hashing the whole package is coarse but safe -- any source change
    invalidates everything, and a stale hit can never survive a refactor.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.blake2b(digest_size=16)
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()


def task_key(task: Task) -> str:
    """Stable cache key: fn ref + canonical payload JSON + code fingerprint.

    Raises ``TypeError`` if the payload is not JSON-serialisable -- a task
    whose identity cannot be written down cannot be cached or replayed.
    """
    blob = json.dumps(
        {"fn": task.fn, "payload": task.payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.blake2b(digest_size=16)
    digest.update(code_fingerprint().encode("utf-8"))
    digest.update(blob.encode("utf-8"))
    return digest.hexdigest()
