"""ASCII timeline rendering of a finished run.

Produces a per-process lane diagram in the spirit of the paper's Figures
1 and 5: deliveries, sends, crashes, restores, tokens and rollbacks laid
out against virtual time.  Intended for examples, debugging, and the
narrated walkthroughs -- a trace is much easier to discuss when it looks
like the figure it reproduces.

::

    t=  5.00 | P1 <- m#3
    t= 20.00 | P1 ** CRASH
    t= 22.00 | P1 [] restore ckpt (1, 0, 22) (restart)
    t= 22.00 | P1 => token v0@52
"""

from __future__ import annotations

from typing import Iterable

from repro.sim.trace import EventKind, SimTrace

_GLYPHS = {
    EventKind.SEND: "->",
    EventKind.DELIVER: "<-",
    EventKind.DISCARD: "xx",
    EventKind.POSTPONE: "..",
    EventKind.CRASH: "**",
    EventKind.RESTORE: "[]",
    EventKind.RESTART: "^^",
    EventKind.ROLLBACK: "<<",
    EventKind.TOKEN_SEND: "=>",
    EventKind.TOKEN_DELIVER: "=<",
    EventKind.OUTPUT: "!!",
    EventKind.CHECKPOINT: "##",
}

DEFAULT_KINDS = (
    EventKind.DELIVER,
    EventKind.DISCARD,
    EventKind.POSTPONE,
    EventKind.CRASH,
    EventKind.RESTORE,
    EventKind.RESTART,
    EventKind.ROLLBACK,
    EventKind.TOKEN_SEND,
    EventKind.TOKEN_DELIVER,
)


def _describe(event) -> str:
    kind = event.kind
    if kind is EventKind.SEND:
        return f"m#{event['msg_id']} to P{event['dst']}"
    if kind is EventKind.DELIVER:
        suffix = " (replay)" if event.get("replay") else ""
        return f"m#{event['msg_id']}{suffix}"
    if kind is EventKind.DISCARD:
        return f"m#{event['msg_id']} ({event.get('reason', '?')})"
    if kind is EventKind.POSTPONE:
        return f"m#{event['msg_id']} awaiting {event.get('awaiting')}"
    if kind is EventKind.CRASH:
        return "CRASH"
    if kind is EventKind.RESTORE:
        return f"restore ckpt {event['ckpt_uid']} ({event['reason']})"
    if kind is EventKind.RESTART:
        return (
            f"restart v{event.get('failed_version', '?')}"
            f"->v{event.get('new_version', '?')} "
            f"(replayed {event.get('replayed', 0)})"
        )
    if kind is EventKind.ROLLBACK:
        return (
            f"rollback for P{event.get('origin')}'s "
            f"v{event.get('version')}@{event.get('timestamp')} "
            f"(replayed {event.get('replayed', 0)})"
        )
    if kind is EventKind.TOKEN_SEND:
        return f"token v{event.get('version')}@{event.get('timestamp')}"
    if kind is EventKind.TOKEN_DELIVER:
        return (
            f"token from P{event.get('origin')} "
            f"v{event.get('version')}@{event.get('timestamp')}"
        )
    if kind is EventKind.OUTPUT:
        mark = "committed" if event.get("committed") else "emitted"
        return f"output {event.get('value')!r} ({mark})"
    if kind is EventKind.CHECKPOINT:
        return f"checkpoint #{event.get('ckpt_id')}"
    return str(event.fields)


def render_timeline(
    trace: SimTrace,
    *,
    kinds: Iterable[EventKind] = DEFAULT_KINDS,
    pids: Iterable[int] | None = None,
    start: float = 0.0,
    end: float | None = None,
    limit: int = 200,
) -> str:
    """Render selected trace events as one line per event.

    ``kinds``/``pids``/``start``/``end`` filter; ``limit`` caps the output
    (a note is appended when events were elided).
    """
    kind_set = set(kinds)
    pid_set = set(pids) if pids is not None else None
    lines: list[str] = []
    elided = 0
    for event in trace:
        if event.kind not in kind_set:
            continue
        if pid_set is not None and event.pid not in pid_set:
            continue
        if event.time < start or (end is not None and event.time > end):
            continue
        if len(lines) >= limit:
            elided += 1
            continue
        glyph = _GLYPHS.get(event.kind, "??")
        lines.append(
            f"t={event.time:8.2f} | P{event.pid} {glyph} {_describe(event)}"
        )
    if elided:
        lines.append(f"... {elided} more events elided (limit={limit})")
    return "\n".join(lines)


def lane_summary(trace: SimTrace, n: int) -> str:
    """One line per process: counts of the events that matter."""
    rows = []
    for pid in range(n):
        rows.append(
            f"P{pid}: "
            f"deliver={trace.count(EventKind.DELIVER, pid)} "
            f"discard={trace.count(EventKind.DISCARD, pid)} "
            f"postpone={trace.count(EventKind.POSTPONE, pid)} "
            f"crash={trace.count(EventKind.CRASH, pid)} "
            f"rollback={trace.count(EventKind.ROLLBACK, pid)}"
        )
    return "\n".join(rows)
