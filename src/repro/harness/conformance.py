"""Differential protocol conformance: one workload, every protocol.

Table 1's thesis is that eight very different recovery protocols all
implement the *same* abstract service: deliver application messages, lose
nothing that was committed, and leave no orphan computation behind after a
failure.  This module makes that claim executable.  The same seeded
workload-plus-failure schedule (a :class:`~repro.apps.PipelineApp` run
under FIFO ordering, a valid strengthening of every protocol's ordering
assumption) is pushed through every implementation in
:data:`PROTOCOL_REGISTRY`, and each run is graded against the shared
invariants:

- the recovery verdict (:func:`repro.analysis.consistency.check_recovery`)
  with per-protocol expectations from :func:`grade_kwargs`;
- **no orphan survives recovery** -- checked directly against the ground
  truth, independent of the verdict's own bookkeeping;
- **useful-output consistency** -- environment-committed outputs that the
  post-hoc ground truth does *not* condemn must be a duplicate-free
  subsequence of the outputs a failure-free reference run produces.  A
  protocol may commit fewer outputs (it ran out of horizon) but never
  different or reordered ones;
- **rollback bound** -- ``max_rollbacks_for_single_failure`` must respect
  the protocol's published Table 1 bound (1 for everyone except
  Strom-Yemini's ``2^n`` domino worst case and coordinated
  checkpointing's whole-system rollback).

The checks are exposed individually so the mutation tests can prove they
have teeth: forging a condemned output into a trace, or tightening a
bound to zero, must produce a violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.consistency import check_recovery
from repro.apps import PipelineApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import (
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
)
from repro.protocols import (
    CausalLoggingProcess,
    CoordinatedProcess,
    PessimisticReceiverProcess,
    PetersonKearnsProcess,
    ProtocolConfig,
    SenderBasedProcess,
    SistlaWelchProcess,
    SmithJohnsonTygarProcess,
    StromYeminiProcess,
)
from repro.sim.failures import CrashPlan
from repro.sim.network import DeliveryOrder
from repro.sim.trace import EventKind

#: Canonical CLI name -> protocol class, for every implementation the repo
#: has.  The CLI, the conformance suite, and the parallel Table 1 harness
#: all resolve protocols through this one registry.
PROTOCOL_REGISTRY = {
    "damani-garg": DamaniGargProcess,
    "strom-yemini": StromYeminiProcess,
    "sender-based": SenderBasedProcess,
    "sistla-welch": SistlaWelchProcess,
    "peterson-kearns": PetersonKearnsProcess,
    "smith-johnson-tygar": SmithJohnsonTygarProcess,
    "pessimistic": PessimisticReceiverProcess,
    "causal": CausalLoggingProcess,
    "coordinated": CoordinatedProcess,
}


def registry_name(protocol_cls) -> str:
    """The canonical CLI name of a registered protocol class."""
    for name, cls in PROTOCOL_REGISTRY.items():
        if cls is protocol_cls:
            return name
    raise KeyError(f"{protocol_cls!r} is not in PROTOCOL_REGISTRY")


def grade_kwargs(protocol_cls) -> dict:
    """Which oracle expectations the protocol actually promises.

    Strom-Yemini tolerates cascaded (domino) rollbacks and coordinated
    checkpointing rolls the whole system back, so neither promises
    minimal/single rollback; everyone else does.
    """
    promises_minimal = protocol_cls not in (
        StromYeminiProcess,
        CoordinatedProcess,
    )
    return {
        "expect_minimal_rollback": promises_minimal,
        "expect_maximum_recovery": promises_minimal,
        "expect_single_rollback_per_failure": promises_minimal,
    }


#: Table 1's "maximum rollbacks per failure" column as a function of n.
_ROLLBACK_BOUNDS: dict[type, Callable[[int], int]] = {
    StromYeminiProcess: lambda n: 2 ** n,
    CoordinatedProcess: lambda n: 2 ** n,
}


def rollback_bound(protocol_cls, n: int) -> int:
    """Worst-case rollbacks of one process for a single failure."""
    return _ROLLBACK_BOUNDS.get(protocol_cls, lambda _n: 1)(n)


@dataclass(frozen=True)
class ConformanceSchedule:
    """One seeded workload + failure schedule, same for every protocol."""

    name: str
    seed: int
    crashes: tuple[tuple[float, int, float], ...]  # (time, pid, downtime)
    n: int = 4
    jobs: int = 8
    horizon: float = 130.0

    def crash_plan(self) -> CrashPlan | None:
        if not self.crashes:
            return None
        plan = CrashPlan()
        for time, pid, downtime in self.crashes:
            plan.crash(time, pid, downtime)
        return plan


#: The standard battery: single crashes at different points of the
#: pipeline, hitting different stages.  Concurrent crashes are deliberately
#: absent -- several registered protocols do not claim to tolerate them.
CONFORMANCE_SCHEDULES = (
    ConformanceSchedule(
        name="early-crash-mid-stage", seed=3, crashes=((18.0, 1, 2.0),)
    ),
    ConformanceSchedule(
        name="late-crash-final-stage", seed=11, crashes=((42.0, 3, 3.0),)
    ),
    ConformanceSchedule(
        name="double-sequential-crash",
        seed=23,
        crashes=((20.0, 2, 2.0), (55.0, 0, 2.0)),
    ),
)


def build_conformance_spec(
    protocol_cls, schedule: ConformanceSchedule, *, crashes: bool = True
) -> ExperimentSpec:
    """The identical experiment for every protocol.

    FIFO ordering is a valid strengthening of every protocol's published
    assumption (protocols that tolerate arbitrary order also run under
    FIFO), which is what makes the runs comparable.
    """
    return ExperimentSpec(
        n=schedule.n,
        app=PipelineApp(jobs=schedule.jobs),
        protocol=protocol_cls,
        crashes=schedule.crash_plan() if crashes else None,
        seed=schedule.seed,
        horizon=schedule.horizon,
        order=DeliveryOrder.FIFO,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )


def reference_outputs(schedule: ConformanceSchedule) -> list:
    """Committed outputs of the failure-free run: the ground truth the
    failure runs are compared against.  Under FIFO, PipelineApp's outputs
    are fully determined by the schedule's seed, so the (crash-free)
    Damani-Garg run serves as the reference for every protocol."""
    result = run_experiment(
        build_conformance_spec(DamaniGargProcess, schedule, crashes=False)
    )
    return committed_useful_outputs(result, set())


def committed_useful_outputs(
    result: ExperimentResult, condemned: set
) -> list:
    """Values of environment-visible outputs from non-condemned states,
    in trace order.

    Base protocols emit outputs directly (no ``committed`` field); the
    Damani-Garg output-commit extension additionally records held-back
    outputs with ``committed=False``, which are *not* environment-visible
    and are excluded here.
    """
    return [
        ev.get("value")
        for ev in result.trace.events(EventKind.OUTPUT)
        if ev.get("committed", True) and tuple(ev["uid"]) not in condemned
    ]


def _is_subsequence(candidate: Sequence, reference: Sequence) -> bool:
    it = iter(reference)
    return all(any(item == ref for ref in it) for item in candidate)


def check_conformance(
    result: ExperimentResult,
    protocol_cls,
    schedule: ConformanceSchedule,
    reference: list,
) -> list[str]:
    """Grade one finished run against the shared invariants."""
    violations: list[str] = []

    verdict = check_recovery(result, **grade_kwargs(protocol_cls))
    violations.extend(f"recovery: {v}" for v in verdict.violations)

    gt = verdict.ground_truth
    surviving_orphans = gt.orphans() & gt.surviving_states
    if surviving_orphans:
        violations.append(
            f"orphans: {len(surviving_orphans)} orphan state(s) survived "
            f"recovery: {sorted(surviving_orphans)[:3]}"
        )

    condemned = gt.orphans() | gt.lost
    violations.extend(
        check_output_conformance(result, condemned, reference)
    )

    bound = rollback_bound(protocol_cls, schedule.n)
    worst = result.max_rollbacks_for_single_failure()
    if worst > bound:
        violations.append(
            f"rollback-bound: {worst} rollbacks for a single failure "
            f"exceeds {protocol_cls.name}'s bound of {bound}"
        )
    return violations


def check_output_conformance(
    result: ExperimentResult, condemned: set, reference: list
) -> list[str]:
    """Useful committed outputs must be a duplicate-free subsequence of
    the failure-free reference outputs."""
    useful = committed_useful_outputs(result, condemned)
    violations: list[str] = []
    duplicates = [value for value in useful if useful.count(value) > 1]
    if duplicates:
        violations.append(
            f"outputs: duplicate committed output(s) {duplicates[:3]!r}"
        )
    elif not _is_subsequence(useful, reference):
        extra = [value for value in useful if value not in reference]
        violations.append(
            "outputs: committed outputs are not a subsequence of the "
            f"failure-free reference (novel/reordered: {extra[:3]!r})"
        )
    return violations


def run_conformance(
    protocol_cls,
    schedule: ConformanceSchedule,
    *,
    reference: list | None = None,
) -> list[str]:
    """Run one protocol on one schedule; return all violations."""
    if reference is None:
        reference = reference_outputs(schedule)
    result = run_experiment(build_conformance_spec(protocol_cls, schedule))
    return check_conformance(result, protocol_cls, schedule, reference)
