"""Hand-scripted reconstructions of the paper's worked examples.

- :func:`figure1` -- the Figure 1 computation: three processes, P1 fails
  having logged only its first receive, state ``s12`` is lost, ``s22`` on
  P2 becomes an orphan and is rolled back; every FTVC box in the figure is
  reproduced exactly.
- :func:`figure5` -- the Figure 5 recovery example: P0 postpones message
  ``m2`` (it mentions version 1 of P1 before P1's version-0 token arrived),
  detects it is an orphan when the token lands and rolls back to its
  checkpoint, and P2 discards the obsolete message ``m0`` outright.

Both scenarios drive the *real* protocol stack -- nothing is mocked -- with
a scripted application and scripted per-message latencies that force the
exact orderings shown in the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.recovery import DamaniGargProcess
from repro.protocols.base import BaseRecoveryProcess, ProtocolConfig
from repro.sim.failures import CrashPlan, FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.network import DeliveryOrder, Network, ScriptedLatency
from repro.sim.process import ProcessContext, ProcessHost
from repro.sim.rng import RandomStreams
from repro.sim.trace import SimTrace


class ScriptedApp:
    """A table-driven piecewise-deterministic application.

    ``bootstrap_sends[pid]`` lists the messages a process sends at start;
    ``rules[(pid, payload)]`` lists the messages sent on receiving
    ``payload``.  Payloads are plain strings, which keeps the scenario
    scripts readable against the paper's figures ("m1", "m2", ...).
    """

    def __init__(
        self,
        bootstrap_sends: dict[int, list[tuple[int, str]]] | None = None,
        rules: dict[tuple[int, str], list[tuple[int, str]]] | None = None,
    ) -> None:
        self.bootstrap_sends = bootstrap_sends or {}
        self.rules = rules or {}

    def initial_state(self, pid: int, n: int) -> tuple[str, ...]:
        return ()

    def bootstrap(self, pid: int, n: int, ctx: ProcessContext) -> None:
        for dst, payload in self.bootstrap_sends.get(pid, []):
            ctx.send(dst, payload)

    def handle(
        self, state: tuple[str, ...], payload: str, ctx: ProcessContext
    ) -> tuple[str, ...]:
        for dst, out in self.rules.get((ctx.pid, payload), []):
            ctx.send(dst, out)
        return state + (payload,)


@dataclass
class ScenarioResult:
    """A finished scripted run plus handles for assertions."""

    sim: Simulator
    network: Network
    trace: SimTrace
    hosts: list[ProcessHost]
    protocols: list[DamaniGargProcess]
    notes: dict[str, Any] = field(default_factory=dict)


def _build(
    n: int,
    app: ScriptedApp,
    latency: ScriptedLatency,
    config: ProtocolConfig,
    protocol_cls: type[BaseRecoveryProcess] = DamaniGargProcess,
) -> tuple[Simulator, Network, SimTrace, list[ProcessHost], list]:
    sim = Simulator()
    trace = SimTrace()
    network = Network(
        sim,
        n,
        streams=RandomStreams(0),
        latency=latency,
        order=DeliveryOrder.RANDOM,
        trace=trace,
    )
    hosts = [ProcessHost(pid, sim, network, trace) for pid in range(n)]
    protocols = [
        protocol_cls(host.runtime_env(), app, config) for host in hosts
    ]
    return sim, network, trace, hosts, protocols


def figure1() -> ScenarioResult:
    """Reproduce the Figure 1 computation exactly.

    Timeline (virtual time):

    ====  =====================================================
    t=0   P2 sends m0 to P1 (slow: arrives t=50, after restart);
          P0 sends m1 (arrives t=5) and m2 (arrives t=10) to P1
    t=5   P1 delivers m1 -> state s11
    t=7   P1 flushes its log (m1 becomes stable)
    t=10  P1 delivers m2 -> state s12, which sends m3 to P2
    t=15  P2 delivers m3 -> state s22
    t=20  P1 crashes (m2 was never flushed: s12 is lost)
    t=22  P1 restarts: restores, replays m1, broadcasts token, r10
    ~t=24 P2 receives the token, finds s22 orphaned, rolls back: r20
    t=50  m0 arrives at restarted P1
    ====  =====================================================
    """
    app = ScriptedApp(
        bootstrap_sends={
            2: [(1, "m0")],
            0: [(1, "m1"), (1, "m2")],
        },
        rules={
            (1, "m2"): [(2, "m3")],
        },
    )
    latency = (
        ScriptedLatency(default=2.0)
        .plan(2, 1, 50.0)          # m0
        .plan(0, 1, 5.0, 10.0)     # m1, m2
        .plan(1, 2, 5.0)           # m3 (sent at t=10, arrives t=15)
    )
    config = ProtocolConfig(checkpoint_interval=1e9, flush_interval=1e9)
    sim, network, trace, hosts, protocols = _build(3, app, latency, config)

    injector = FailureInjector(sim, hosts, network)
    injector.install(CrashPlan().crash(20.0, 1, downtime=2.0))
    sim.schedule_at(7.0, protocols[1].flush_log, label="flush-m1")

    for host in hosts:
        host.start()
    sim.run(until=60.0)
    for protocol in protocols:
        protocol.halt_periodic_tasks()
    sim.drain()

    return ScenarioResult(
        sim=sim,
        network=network,
        trace=trace,
        hosts=hosts,
        protocols=protocols,
        notes={
            "s11": ((0, 1), (0, 2), (0, 0)),
            "s12": ((0, 2), (0, 3), (0, 0)),
            "s22": ((0, 2), (0, 3), (0, 3)),
            "r10": ((0, 1), (1, 0), (0, 0)),
            "r20": ((0, 0), (0, 0), (0, 3)),
            "p1_after_m0": ((0, 1), (1, 1), (0, 1)),
        },
    )


def figure5() -> ScenarioResult:
    """Reproduce the Figure 5 recovery behaviours exactly.

    - ``x2`` reaches P1 and is never flushed; the state it creates sends
      ``m1`` to P0, so after P1's failure that state is lost and P0 --
      having delivered ``m1`` -- is an orphan.
    - P0's orphan state sends ``m0`` to P2 (slow), so ``m0`` is obsolete.
    - After restarting, P1 (now version 1) sends ``m2`` to P0, which
      arrives *before* P1's version-0 token does: P0 must postpone it.
    - P1's token then reaches P0: rollback, after which ``m2`` is
      delivered.  The token reached P2 much earlier, so when ``m0``
      finally arrives P2 discards it as obsolete.

    Timeline:

    ====  =====================================================
    t=2   P1 delivers x1 (flushed at t=3: survives the crash)
    t=4   P1 delivers x2 (volatile: will be lost), sends m1 to P0
    t=6   P0 delivers m1, sends m0 to P2 (arrives t=30)
    t=7   P0 flushes its log
    t=8   P1 crashes; t=10 restarts, token to P2 (t=12) / P0 (t=20)
    t=14  P1 delivers x3 (version 1), sends m2 to P0 (arrives t=16)
    t=16  P0 postpones m2 (no token for P1 version 0 yet)
    t=20  token reaches P0: orphan -> rollback (r00); m2 delivered
    t=30  m0 reaches P2: discarded as obsolete
    ====  =====================================================
    """
    app = ScriptedApp(
        bootstrap_sends={
            0: [(1, "x1")],
            2: [(1, "x2"), (1, "x3")],
        },
        rules={
            (1, "x2"): [(0, "m1")],
            (0, "m1"): [(2, "m0")],
            (1, "x3"): [(0, "m2")],
        },
    )
    latency = (
        ScriptedLatency(default=2.0)
        .plan(0, 1, 2.0)                   # x1
        .plan(2, 1, 4.0, 14.0)             # x2 (t=4), x3 (t=14)
        .plan(1, 0, 2.0, 2.0)              # m1 (t=6), m2 (t=16)
        .plan(0, 2, 24.0)                  # m0 (t=30)
        .plan(1, 2, 2.0, kind="token")     # token to P2 (t=12)
        .plan(1, 0, 10.0, kind="token")    # token to P0 (t=20)
    )
    config = ProtocolConfig(checkpoint_interval=1e9, flush_interval=1e9)
    sim, network, trace, hosts, protocols = _build(3, app, latency, config)

    injector = FailureInjector(sim, hosts, network)
    injector.install(CrashPlan().crash(8.0, 1, downtime=2.0))
    sim.schedule_at(3.0, protocols[1].flush_log, label="flush-x1")
    sim.schedule_at(7.0, protocols[0].flush_log, label="flush-m1")

    for host in hosts:
        host.start()
    sim.run(until=60.0)
    for protocol in protocols:
        protocol.halt_periodic_tasks()
    sim.drain()

    return ScenarioResult(
        sim=sim,
        network=network,
        trace=trace,
        hosts=hosts,
        protocols=protocols,
    )


def cascade(protocol_cls: type[BaseRecoveryProcess]) -> ScenarioResult:
    """The Table 1 "rollbacks per failure" scenario, deterministically.

    One root failure (P0) whose lost state had infected both P1 and P2:

    ====  ======================================================
    t=0.5 P2's bootstrap message x reaches P0 (never flushed:
          the state it creates is doomed)
    t=1   that doomed state's message a0 reaches P2 -> state w0
    t=2   its message a1 reaches P1 -> state u1
    t=4   P1 (now infected) sends b1 to P2 -> state w1
    t=5   P0 crashes; t=6 restarts and announces
    t=6.5 P0's token reaches P1: u1 is an orphan, P1 rolls back
    t=8   *what P1's rollback implies* reaches P2 first
    t=20  P0's root token finally reaches P2
    ====  ======================================================

    Under Strom-Yemini, P1's rollback ends an incarnation and broadcasts
    its own announcement; P2 rolls back once for it (to w0, which that
    announcement cannot condemn) and then *again* when the root token
    lands -- the cascade behind the paper's O(2^n) column.  Under
    Damani-Garg, P1's rollback announces nothing; P2 learns everything
    from the root token and rolls back exactly once.
    """
    app = ScriptedApp(
        bootstrap_sends={2: [(0, "x"), (0, "pad")]},
        rules={
            (0, "x"): [(2, "a0"), (1, "a1")],
            (1, "a1"): [(2, "b1")],
        },
    )
    latency = (
        ScriptedLatency(default=2.0)
        .plan(2, 0, 0.5, 50.0)             # x at t=0.5; pad arrives late
        .plan(0, 2, 0.5)                   # a0 at t=1
        .plan(0, 1, 1.5)                   # a1 at t=2
        .plan(1, 2, 2.0)                   # b1 at t=4
        .plan(0, 1, 0.5, kind="token")     # root token to P1 at t=6.5
        .plan(0, 2, 14.0, kind="token")    # root token to P2 at t=20
        .plan(1, 2, 1.5, kind="token")     # P1's announcements (S-Y only)
        .plan(1, 0, 1.5, kind="token")
    )
    config = ProtocolConfig(checkpoint_interval=1e9, flush_interval=1e9)
    sim, network, trace, hosts, protocols = _build(
        3, app, latency, config, protocol_cls
    )
    FailureInjector(sim, hosts, network).install(
        CrashPlan().crash(5.0, 0, downtime=1.0)
    )
    for host in hosts:
        host.start()
    sim.run(until=80.0)
    for protocol in protocols:
        protocol.halt_periodic_tasks()
    sim.drain()
    return ScenarioResult(
        sim=sim, network=network, trace=trace, hosts=hosts,
        protocols=protocols,
    )
