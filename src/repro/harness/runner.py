"""The experiment runner: protocol x workload x failure schedule -> result.

A single entry point, :func:`run_experiment`, assembles the full stack
(simulator, network, hosts, protocol processes, failure injector), runs it,
and returns an :class:`ExperimentResult` bundling the ground-truth trace,
per-process protocol stats and the live protocol objects for inspection.
Everything is driven by an :class:`ExperimentSpec`, which is plain data so
sweeps are trivial to express.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.obs.tracer import NULL_TRACER
from repro.protocols.base import (
    BaseRecoveryProcess,
    ProtocolConfig,
    ProtocolStats,
)
from repro.sim.failures import (
    CrashPlan,
    CrashPointEvent,
    FailureInjector,
    PartitionPlan,
)
from repro.sim.kernel import Simulator
from repro.sim.network import (
    DeliveryOrder,
    LatencyModel,
    Network,
    UniformLatency,
)
from repro.runtime.env import RuntimeEnv
from repro.sim.process import Application, ProcessHost
from repro.sim.rng import RandomStreams
from repro.sim.trace import SimTrace

ProtocolFactory = Callable[
    [RuntimeEnv, Application, ProtocolConfig], BaseRecoveryProcess
]


@dataclass
class ExperimentSpec:
    """Everything needed to reproduce one run."""

    n: int
    app: Application
    protocol: ProtocolFactory
    seed: int = 0
    horizon: float = 100.0
    drain: bool = True               # run recovery traffic to quiescence
    drain_limit: int = 2_000_000
    order: DeliveryOrder = DeliveryOrder.RANDOM
    latency: LatencyModel = field(default_factory=UniformLatency)
    # At-least-once transport: probability each app message is delivered
    # twice.  Use only with protocols that suppress duplicates.
    duplicate_rate: float = 0.0
    config: ProtocolConfig = field(default_factory=ProtocolConfig)
    crashes: CrashPlan | None = None
    partitions: PartitionPlan | None = None
    # Named stable-storage crash points to arm (fault injection for the
    # write-ahead-intent crash windows; see repro.storage.intents).
    crash_points: tuple[CrashPointEvent, ...] = ()
    # Record application states per state uid (needed by the predicate
    # detection utilities).
    record_states: bool = False
    # Run a StabilityCoordinator sweep at this interval (enables the output
    # commit / GC extensions for protocols that support apply_stability).
    stability_interval: float | None = None
    # Observability: a repro.obs.Tracer to wire through the whole stack
    # (kernel, network, hosts, protocols).  None = zero-instrumentation.
    # Attaching one must not change the run (determinism test pins this).
    tracer: Any | None = None


@dataclass
class ExperimentResult:
    """What a run produced, for oracles and metrics."""

    spec: ExperimentSpec
    sim: Simulator
    network: Network
    trace: SimTrace
    hosts: list[ProcessHost]
    protocols: list[BaseRecoveryProcess]
    coordinator: Any = None   # StabilityCoordinator when enabled

    @property
    def stats(self) -> list[ProtocolStats]:
        return [p.stats for p in self.protocols]

    def total(self, attr: str) -> Any:
        """Sum a ProtocolStats counter across processes."""
        return sum(getattr(s, attr) for s in self.stats)

    @property
    def total_rollbacks(self) -> int:
        return self.total("rollbacks")

    @property
    def total_restarts(self) -> int:
        return self.total("restarts")

    @property
    def total_delivered(self) -> int:
        return self.total("app_delivered")

    def max_rollbacks_for_single_failure(self) -> int:
        """Across all processes: the most times any one process rolled back
        in response to one failure -- Table 1's "rollbacks per failure"."""
        return max(
            (s.max_rollbacks_for_single_failure for s in self.stats),
            default=0,
        )


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Build the stack described by ``spec``, run it, return the result."""
    sim = Simulator(tracer=spec.tracer)
    if spec.tracer is not None:
        # Gauge samples and obs events carry virtual timestamps.
        spec.tracer.bind_clock(lambda: sim.now)
    streams = RandomStreams(spec.seed)
    trace = SimTrace()
    network = Network(
        sim,
        spec.n,
        streams=streams,
        latency=spec.latency,
        order=spec.order,
        trace=trace,
        duplicate_rate=spec.duplicate_rate,
    )
    hosts = [ProcessHost(pid, sim, network, trace) for pid in range(spec.n)]
    protocols = [
        spec.protocol(host.runtime_env(), spec.app, spec.config)
        for host in hosts
    ]
    if spec.record_states:
        for protocol in protocols:
            protocol.executor.record_states = True
    coordinator = None
    if spec.stability_interval is not None:
        from repro.core.extensions import StabilityCoordinator

        coordinator = StabilityCoordinator(
            sim, protocols, interval=spec.stability_interval
        )
        coordinator.start()
    injector = FailureInjector(sim, hosts, network)
    injector.install(
        spec.crashes, spec.partitions, crash_points=spec.crash_points
    )
    for host in hosts:
        host.start()
    obs = spec.tracer if spec.tracer is not None else NULL_TRACER
    with obs.span("run.horizon_wall_s"):
        sim.run(until=spec.horizon)
    if spec.drain:
        # Stop checkpoint/flush heartbeats so the run can quiesce, then let
        # in-flight application and recovery traffic finish.
        for protocol in protocols:
            protocol.halt_periodic_tasks()
        if coordinator is not None:
            coordinator.stop()
        with obs.span("run.drain_wall_s"):
            sim.drain(limit=spec.drain_limit)
        if coordinator is not None:
            # One final sweep so outputs stranded by the cutoff commit.
            coordinator.sweep_now()
    return ExperimentResult(
        spec=spec,
        sim=sim,
        network=network,
        trace=trace,
        hosts=hosts,
        protocols=protocols,
        coordinator=coordinator,
    )
