"""Experiment harness: runner, figure scenarios, Table 1 battery, reporting."""

from repro.harness.comparison import (
    ComparisonRow,
    measure_protocol,
    run_table1,
)
from repro.harness.reporting import (
    format_table,
    render_paper_comparison,
    render_table1,
)
from repro.harness.runner import (
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
)
from repro.harness.scenarios import ScenarioResult, ScriptedApp, figure1, figure5

__all__ = [
    "ComparisonRow",
    "ExperimentResult",
    "ExperimentSpec",
    "ScenarioResult",
    "ScriptedApp",
    "figure1",
    "figure5",
    "format_table",
    "measure_protocol",
    "render_paper_comparison",
    "render_table1",
    "run_experiment",
    "run_table1",
]
