"""The Table 1 experiment: measure every protocol on the same workloads.

The paper's Table 1 states five properties per protocol.  Here each cell
is *measured* by running the protocol on a standard battery:

- **message ordering** -- the protocol's published assumption, plus an
  empirical run under arbitrary reordering for the protocols that claim
  independence from ordering;
- **asynchronous recovery** -- whether a restarted process resumed without
  waiting (measured: recovery-time blocking at the failed process);
- **max rollbacks per failure** -- the worst count, over all processes and
  seeds, of rollbacks attributed to one root failure;
- **timestamps in vector clock** -- measured piggyback entries per
  application message;
- **concurrent failures** -- whether two simultaneous crashes recover
  safely (oracle-checked).

Safety is oracle-checked on every run; a protocol that violated safety
would fail the battery outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.consistency import check_recovery
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.conformance import (
    PROTOCOL_REGISTRY,
    grade_kwargs,
    registry_name,
)
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.protocols.coordinated import CoordinatedProcess
from repro.protocols.pessimistic_receiver import PessimisticReceiverProcess
from repro.protocols.peterson_kearns import PetersonKearnsProcess
from repro.protocols.sender_based import SenderBasedProcess
from repro.protocols.sistla_welch import SistlaWelchProcess
from repro.protocols.smith_johnson_tygar import SmithJohnsonTygarProcess
from repro.protocols.strom_yemini import StromYeminiProcess
from repro.sim.failures import CrashPlan
from repro.sim.network import DeliveryOrder

#: The Table 1 rows, in the paper's order, plus the two context baselines.
TABLE1_PROTOCOLS = [
    StromYeminiProcess,
    SenderBasedProcess,
    SistlaWelchProcess,
    PetersonKearnsProcess,
    SmithJohnsonTygarProcess,
    DamaniGargProcess,
]

CONTEXT_PROTOCOLS = [
    PessimisticReceiverProcess,
    CoordinatedProcess,
]

#: The paper's published Table 1 entries, for side-by-side reporting.
PAPER_TABLE1 = {
    "Strom-Yemini": ("FIFO", "Yes", "O(2^n)", "O(n)", "1"),
    "Sender-based (Johnson-Zwaenepoel)": ("None", "No", "1", "O(1)", "n"),
    "Sistla-Welch": ("FIFO", "No", "1", "O(n)", "1"),
    "Peterson-Kearns": ("FIFO", "No", "1", "O(n)", "1"),
    "Smith-Johnson-Tygar": ("None", "Yes", "1", "O(n^2 f)", "n"),
    "Damani-Garg": ("None", "Yes", "1", "O(n)", "n"),
}


@dataclass
class ComparisonRow:
    """Measured Table 1 cells for one protocol."""

    name: str
    ordering_assumption: str
    asynchronous_recovery: bool
    recovery_blocked_time: float
    max_rollbacks_per_failure: int
    total_rollbacks: int
    piggyback_entries_per_message: float
    concurrent_failures_safe: bool | None
    safety_ok: bool
    # Measured wire/storage cost on the single-failure battery: clock
    # bytes per app message under the full-clock encoding, the same
    # under the per-link delta encoding (None when the protocol does
    # not delta-encode), and synchronous stable-storage writes per
    # app message.
    wire_bytes_per_message: float = 0.0
    delta_wire_bytes_per_message: float | None = None
    fsyncs_per_message: float = 0.0
    runs: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def paper_row(self) -> tuple[str, ...] | None:
        return PAPER_TABLE1.get(self.name)


# The per-protocol oracle expectations live with the conformance suite
# (one source of truth for what each protocol promises).
_grade_kwargs = grade_kwargs


def measure_protocol(
    protocol_cls,
    *,
    n: int = 4,
    seeds: Sequence[int] = (0, 1, 2, 3, 4, 5),
    horizon: float = 110.0,
) -> ComparisonRow:
    """Run the standard battery for one protocol and fill a row."""
    order = (
        DeliveryOrder.FIFO
        if protocol_cls.requires_fifo
        else DeliveryOrder.RANDOM
    )
    config = ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5)
    app = RandomRoutingApp(hops=50, seeds=(0, 1), initial_items=3)
    grade = _grade_kwargs(protocol_cls)

    safety_ok = True
    max_rollbacks = 0
    total_rollbacks = 0
    piggyback_total = 0
    wire_bits_total = 0
    delta_bits_total = 0
    fsync_total = 0
    sent_total = 0
    failed_blocked = 0.0
    runs = 0
    notes: list[str] = []

    # Battery 1: single failure.
    for seed in seeds:
        spec = ExperimentSpec(
            n=n, app=app, protocol=protocol_cls,
            crashes=CrashPlan().crash(20.0, 1, 2.0),
            seed=seed, horizon=horizon, order=order, config=config,
        )
        result = run_experiment(spec)
        runs += 1
        verdict = check_recovery(result, **grade)
        safety_ok &= verdict.ok
        if not verdict.ok:
            notes.append(f"single-failure seed {seed}: {verdict.violations[:1]}")
        max_rollbacks = max(
            max_rollbacks, result.max_rollbacks_for_single_failure()
        )
        total_rollbacks += result.total_rollbacks
        piggyback_total += result.total("piggyback_entries")
        wire_bits_total += result.total("piggyback_bits")
        delta_bits_total += result.total("piggyback_delta_bits")
        fsync_total += sum(p.storage.sync_writes for p in result.protocols)
        sent_total += result.total("app_sent")
        failed_blocked += result.protocols[1].stats.blocked_time

    # Battery 2: two concurrent failures (only meaningful if claimed).
    concurrent_safe: bool | None
    if protocol_cls.tolerates_concurrent_failures:
        concurrent_safe = True
        for seed in seeds[:3]:
            spec = ExperimentSpec(
                n=n, app=app, protocol=protocol_cls,
                crashes=CrashPlan().concurrent(25.0, [0, 2], 3.0),
                seed=seed, horizon=horizon, order=order, config=config,
            )
            result = run_experiment(spec)
            runs += 1
            verdict = check_recovery(result, **grade)
            concurrent_safe &= verdict.ok
            max_rollbacks = max(
                max_rollbacks, result.max_rollbacks_for_single_failure()
            )
    else:
        concurrent_safe = None    # outside the protocol's contract

    return ComparisonRow(
        name=protocol_cls.name,
        ordering_assumption="FIFO" if protocol_cls.requires_fifo else "None",
        asynchronous_recovery=protocol_cls.asynchronous_recovery,
        recovery_blocked_time=failed_blocked / max(1, len(seeds)),
        max_rollbacks_per_failure=max_rollbacks,
        total_rollbacks=total_rollbacks,
        piggyback_entries_per_message=piggyback_total / max(1, sent_total),
        concurrent_failures_safe=concurrent_safe,
        safety_ok=safety_ok,
        wire_bytes_per_message=wire_bits_total / 8 / max(1, sent_total),
        delta_wire_bytes_per_message=(
            delta_bits_total / 8 / max(1, sent_total)
            if delta_bits_total
            else None
        ),
        fsyncs_per_message=fsync_total / max(1, sent_total),
        runs=runs,
        notes=notes,
    )


def exec_measure_protocol(payload: dict) -> ComparisonRow:
    """Worker entry point: one Table 1 row, addressed by registry name."""
    return measure_protocol(
        PROTOCOL_REGISTRY[payload["protocol"]],
        n=int(payload["n"]),
        seeds=tuple(payload["seeds"]),
    )


def run_table1(
    *,
    n: int = 4,
    seeds: Sequence[int] = (0, 1, 2, 3, 4, 5),
    include_context: bool = True,
    protocols: Sequence[type] | None = None,
    jobs: int = 1,
) -> list[ComparisonRow]:
    """Measure every Table 1 row (plus the context baselines).

    ``protocols`` restricts the matrix to a subset; ``jobs > 1`` measures
    the rows across the :mod:`repro.exec` worker pool (each row is an
    independent battery of seeded runs), merged back in row order.
    """
    if protocols is None:
        protocols = list(TABLE1_PROTOCOLS)
        if include_context:
            protocols = protocols + CONTEXT_PROTOCOLS
    if jobs <= 1:
        return [
            measure_protocol(protocol_cls, n=n, seeds=seeds)
            for protocol_cls in protocols
        ]

    from repro.exec.runner import ParallelRunner
    from repro.exec.tasks import Task

    tasks = [
        Task(
            fn="repro.harness.comparison:exec_measure_protocol",
            payload={
                "protocol": registry_name(protocol_cls),
                "n": n,
                "seeds": list(seeds),
            },
            label=registry_name(protocol_cls),
            cacheable=False,
        )
        for protocol_cls in protocols
    ]
    outcomes = ParallelRunner(jobs=jobs).map(tasks)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        raise RuntimeError(
            f"table1 row {failed[0].label!r} failed:\n{failed[0].error}"
        )
    return [o.value for o in outcomes]
