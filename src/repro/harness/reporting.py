"""ASCII rendering of experiment results, matching the paper's tables."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.harness.comparison import ComparisonRow


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[str]]
) -> str:
    """Monospace table with column auto-sizing."""
    materialized = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "  ".join("-" * w for w in widths)
    out = [line(headers), separator]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def render_table1(rows: list[ComparisonRow]) -> str:
    """The measured Table 1, in the paper's column order."""
    headers = [
        "Protocol",
        "Ordering",
        "Async recovery",
        "Max rollbacks/failure",
        "Piggyback entries/msg",
        "Concurrent failures",
        "Safety",
    ]
    body = []
    for row in rows:
        concurrent = (
            "n (safe)"
            if row.concurrent_failures_safe
            else "1 (not claimed)"
            if row.concurrent_failures_safe is None
            else "UNSAFE"
        )
        body.append(
            [
                row.name,
                row.ordering_assumption,
                "Yes"
                if row.asynchronous_recovery
                else f"No (blocked {row.recovery_blocked_time:.2f})",
                str(row.max_rollbacks_per_failure),
                f"{row.piggyback_entries_per_message:.1f}",
                concurrent,
                "ok" if row.safety_ok else "VIOLATED",
            ]
        )
    return format_table(headers, body)


def render_paper_comparison(rows: list[ComparisonRow]) -> str:
    """Measured values side by side with the paper's published cells."""
    headers = [
        "Protocol",
        "Ordering (paper/ours)",
        "Async (paper/ours)",
        "Rollbacks (paper/ours)",
        "Clock size (paper/ours)",
        "Concurrent (paper/ours)",
    ]
    body = []
    for row in rows:
        paper = row.paper_row
        if paper is None:
            continue
        p_order, p_async, p_roll, p_clock, p_conc = paper
        ours_conc = (
            "n" if row.concurrent_failures_safe else "1"
            if row.concurrent_failures_safe is None else "FAIL"
        )
        body.append(
            [
                row.name,
                f"{p_order} / {row.ordering_assumption}",
                f"{p_async} / "
                f"{'Yes' if row.asynchronous_recovery else 'No'}",
                f"{p_roll} / {row.max_rollbacks_per_failure}",
                f"{p_clock} / {row.piggyback_entries_per_message:.1f}",
                f"{p_conc} / {ours_conc}",
            ]
        )
    return format_table(headers, body)
