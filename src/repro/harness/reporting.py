"""ASCII rendering of experiment results, matching the paper's tables.

Also renders the observability layer's end-of-run
:class:`~repro.obs.export.MetricsReport` (``python -m repro trace``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.harness.comparison import ComparisonRow

if TYPE_CHECKING:
    from repro.obs.export import MetricsReport


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[str]]
) -> str:
    """Monospace table with column auto-sizing."""
    materialized = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "  ".join("-" * w for w in widths)
    out = [line(headers), separator]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def render_table1(rows: list[ComparisonRow]) -> str:
    """The measured Table 1, in the paper's column order."""
    headers = [
        "Protocol",
        "Ordering",
        "Async recovery",
        "Max rollbacks/failure",
        "Piggyback entries/msg",
        "Wire B/msg (full/delta)",
        "fsyncs/msg",
        "Concurrent failures",
        "Safety",
    ]
    body = []
    for row in rows:
        delta = (
            f"{row.delta_wire_bytes_per_message:.1f}"
            if row.delta_wire_bytes_per_message is not None
            else "-"
        )
        concurrent = (
            "n (safe)"
            if row.concurrent_failures_safe
            else "1 (not claimed)"
            if row.concurrent_failures_safe is None
            else "UNSAFE"
        )
        body.append(
            [
                row.name,
                row.ordering_assumption,
                "Yes"
                if row.asynchronous_recovery
                else f"No (blocked {row.recovery_blocked_time:.2f})",
                str(row.max_rollbacks_per_failure),
                f"{row.piggyback_entries_per_message:.1f}",
                f"{row.wire_bytes_per_message:.1f} / {delta}",
                f"{row.fsyncs_per_message:.2f}",
                concurrent,
                "ok" if row.safety_ok else "VIOLATED",
            ]
        )
    return format_table(headers, body)


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.6g}"


def render_metrics_report(report: "MetricsReport") -> str:
    """Human-readable summary of an instrumented run.

    Counters and gauge peaks side by side, wall-time histograms, and the
    Section 6.9 overhead cross-check when available.
    """
    sections: list[str] = []
    extra = report.extra
    head = [
        ("processes", extra.get("n", "?")),
        ("seed", extra.get("seed", "?")),
        ("virtual end time", _fmt(extra.get("virtual_end", 0.0))),
        ("events fired", extra.get("events_fired", "?")),
        ("obs events recorded", report.event_count),
    ]
    if report.wall_time_s is not None:
        head.append(("wall time (s)", f"{report.wall_time_s:.4f}"))
        events = extra.get("events_fired")
        if events and report.wall_time_s > 0:
            head.append(
                ("events/sec", f"{events / report.wall_time_s:,.0f}")
            )
    sections.append(
        format_table(["run", "value"], [(k, str(v)) for k, v in head])
    )

    if report.counters:
        sections.append(
            format_table(
                ["counter", "value"],
                [(name, _fmt(v)) for name, v in report.counters.items()],
            )
        )

    if report.gauges:
        sections.append(
            format_table(
                ["gauge", "last", "max"],
                [
                    (name, _fmt(g["last"]), _fmt(g["max"]))
                    for name, g in report.gauges.items()
                ],
            )
        )

    if report.histograms:
        sections.append(
            format_table(
                ["histogram", "count", "mean", "max"],
                [
                    (
                        name,
                        str(h["count"]),
                        f"{h['mean']:.3g}",
                        f"{h['max']:.3g}" if h["max"] is not None else "-",
                    )
                    for name, h in report.histograms.items()
                ],
            )
        )

    if report.overhead is not None:
        o = report.overhead
        sections.append(
            format_table(
                ["overhead (Section 6.9)", "value"],
                [
                    ("failures", o.failures),
                    ("app messages", o.app_messages),
                    ("control messages", o.control_messages),
                    (
                        "piggyback entries/msg",
                        f"{o.piggyback_entries_per_message:.1f}",
                    ),
                    (
                        "piggyback bits/msg",
                        f"{o.piggyback_bits_per_message:.0f}",
                    ),
                    (
                        "bytes on wire/msg (full / delta)",
                        f"{o.wire_bytes_per_message:.1f} / "
                        + (
                            f"{o.delta_wire_bytes_per_message:.1f}"
                            if o.delta_wire_bytes_per_message is not None
                            else "-"
                        ),
                    ),
                    (
                        "fsyncs (sync writes / per msg)",
                        f"{o.sync_writes} / {o.fsyncs_per_message:.2f}",
                    ),
                    (
                        "history records (max)",
                        f"{o.history_records_max} (bound {o.history_bound})",
                    ),
                    ("rollbacks / restarts", f"{o.rollbacks} / {o.restarts}"),
                ],
            )
        )
    return "\n\n".join(sections)


def render_paper_comparison(rows: list[ComparisonRow]) -> str:
    """Measured values side by side with the paper's published cells."""
    headers = [
        "Protocol",
        "Ordering (paper/ours)",
        "Async (paper/ours)",
        "Rollbacks (paper/ours)",
        "Clock size (paper/ours)",
        "Concurrent (paper/ours)",
    ]
    body = []
    for row in rows:
        paper = row.paper_row
        if paper is None:
            continue
        p_order, p_async, p_roll, p_clock, p_conc = paper
        ours_conc = (
            "n" if row.concurrent_failures_safe else "1"
            if row.concurrent_failures_safe is None else "FAIL"
        )
        body.append(
            [
                row.name,
                f"{p_order} / {row.ordering_assumption}",
                f"{p_async} / "
                f"{'Yes' if row.asynchronous_recovery else 'No'}",
                f"{p_roll} / {row.max_rollbacks_per_failure}",
                f"{p_clock} / {row.piggyback_entries_per_message:.1f}",
                f"{p_conc} / {ours_conc}",
            ]
        )
    return format_table(headers, body)
