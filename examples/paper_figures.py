#!/usr/bin/env python3
"""Walk through the paper's Figure 1 and Figure 5, live.

Both figures are reconstructed by driving the real protocol stack with
scripted messages and latencies; every FTVC box printed in Figure 1 is
checked against the protocol's actual clocks, and Figure 5's three
behaviours (postponement, obsolete discard, orphan rollback) are shown as
they happen in the trace.

Run:  python examples/paper_figures.py
"""

from repro.analysis import check_recovery
from repro.harness.scenarios import figure1, figure5
from repro.sim.trace import EventKind

INTERESTING = (
    EventKind.SEND,
    EventKind.DELIVER,
    EventKind.DISCARD,
    EventKind.POSTPONE,
    EventKind.CRASH,
    EventKind.RESTORE,
    EventKind.TOKEN_SEND,
    EventKind.TOKEN_DELIVER,
    EventKind.RESTART,
    EventKind.ROLLBACK,
)


def print_timeline(result, title: str) -> None:
    print(f"=== {title} ===")
    for event in result.trace:
        if event.kind in INTERESTING:
            fields = {
                k: v
                for k, v in event.fields.items()
                if k in ("msg_id", "reason", "awaiting", "version",
                         "timestamp", "origin", "replayed",
                         "failed_version", "new_version")
            }
            print(f"  t={event.time:6.2f}  P{event.pid}  "
                  f"{event.kind.value:<13} {fields}")
    print()


def main() -> None:
    result1 = figure1()
    print_timeline(result1, "Figure 1: the computation, failure and recovery")
    print("clock boxes from the paper, verified against the protocol:")
    for name in ("s11", "s12", "s22", "r10", "r20", "p1_after_m0"):
        print(f"  {name:<12} = {result1.notes[name]}")
    assert result1.protocols[1].clock.pairs() == result1.notes["p1_after_m0"]
    assert result1.protocols[2].clock.pairs() == result1.notes["r20"]
    assert check_recovery(result1).ok
    print("figure 1 verified\n")

    result5 = figure5()
    print_timeline(result5, "Figure 5: postponement, obsolete discard, "
                            "orphan rollback")
    postpones = result5.trace.events(EventKind.POSTPONE, pid=0)
    discards = result5.trace.events(EventKind.DISCARD, pid=2)
    rollbacks = result5.trace.events(EventKind.ROLLBACK, pid=0)
    print(f"m2 postponed by P0 awaiting token {postpones[0]['awaiting']}; "
          f"delivered after the token arrived")
    print(f"m0 discarded by P2 as {discards[0]['reason']}")
    print(f"P0 rolled back once (token from P{rollbacks[0]['origin']}, "
          f"version {rollbacks[0]['version']})")
    assert check_recovery(result5).ok
    print("figure 5 verified")


if __name__ == "__main__":
    main()
