#!/usr/bin/env python3
"""Distributed predicate detection with fault-tolerant vector clocks.

Section 4 of the paper notes the FTVC "can also be applied to other
distributed algorithms such as distributed predicate detection".  This
example detects a *weak conjunctive predicate* -- "was there a consistent
global state in which branches 0 and 1 were simultaneously flush with
funds?" -- over a banking run that includes a crash and the resulting
rollbacks.

Theorem 1 makes the FTVC comparisons valid exactly on the *useful* states
(neither lost nor orphan), so the detector runs over those and the witness
cut is guaranteed to be part of the recovered, consistent history.

Run:  python examples/predicate_detection.py
"""

from repro import (
    CrashPlan,
    DamaniGargProcess,
    ExperimentSpec,
    ProtocolConfig,
    run_experiment,
)
from repro.analysis import check_recovery, detect_weak_conjunctive
from repro.analysis.causality import build_ground_truth
from repro.apps import BankApp

THRESHOLD = 1100    # above the initial balance: never true at the start


def main() -> None:
    spec = ExperimentSpec(
        n=4,
        app=BankApp(initial_balance=1000, seeds=(0, 1), max_chain=200),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(15.0, 2, downtime=2.0),
        horizon=90.0,
        seed=9,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
        record_states=True,     # the detector needs per-state app values
    )
    result = run_experiment(spec)
    assert check_recovery(result).ok

    flush_with_funds = lambda state: state.balance > THRESHOLD  # noqa: E731
    witness = detect_weak_conjunctive(
        result, {0: flush_with_funds, 1: flush_with_funds}
    )

    print(f"predicate: balance(P0) > {THRESHOLD} AND balance(P1) > {THRESHOLD}")
    if witness is None:
        print("no consistent cut satisfies the predicate in this run")
        return

    print("witness cut found:")
    for uid, value, clock in zip(witness.states, witness.values,
                                 witness.clocks):
        print(f"  P{uid[0]} state {uid}: balance={value.balance}  "
              f"clock={clock!r}")

    # The witness is made of useful states: it belongs to the recovered
    # history even though a failure rolled other states away.
    gt = build_ground_truth(result.trace, 4)
    useful = gt.useful()
    for uid in witness.states:
        assert uid in useful
    # And the two states are concurrent: neither clock dominates.
    a, b = witness.clocks
    assert not (a < b) and not (b < a)
    print("\nwitness verified: consistent (concurrent) and on useful states")
    print(f"(run had {len(gt.lost)} lost and "
          f"{len(gt.orphans())} orphaned states the detector had to avoid)")


if __name__ == "__main__":
    main()
