#!/usr/bin/env python3
"""Distributed shared memory that survives crashes of homes and workers.

The paper's Section 2 notes that message-passing recovery extends to
Distributed Shared Memory.  Here a write-invalidate, sequentially
consistent DSM (home-based pages, cached reads, invalidation-acknowledged
writes, atomic fetch-and-add) runs unmodified on top of the Damani-Garg
protocol.  A home node and a worker both crash mid-run; afterwards:

- every worker completes its full operation sequence;
- each page's version history at its home is dense (no committed write
  vanished, none applied twice);
- every value any worker ever read corresponds to a committed write;
- the shared fetch-add counters show no lost or duplicated increments.

Run:  python examples/dsm_shared_memory.py
"""

from collections import defaultdict

from repro import (
    CrashPlan,
    DamaniGargProcess,
    ExperimentSpec,
    ProtocolConfig,
    run_experiment,
)
from repro.analysis import check_recovery
from repro.dsm import DSMApp

HOMES, WORKERS, OPS, PAGES = 2, 3, 20, 4


def main() -> None:
    spec = ExperimentSpec(
        n=HOMES + WORKERS,
        app=DSMApp(homes=HOMES, pages=PAGES, ops_per_worker=OPS),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(40.0, 0, 2.0).crash(80.0, 3, 2.0),
        horizon=400.0,
        seed=1,
        config=ProtocolConfig(
            checkpoint_interval=12.0,
            flush_interval=4.0,
            retransmit_on_token=True,
        ),
    )
    result = run_experiment(spec)
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations

    print(f"{HOMES} home nodes, {WORKERS} workers, {PAGES} pages; "
          f"home 0 and worker 3 crash\n")

    print("--- workers ---")
    for pid in range(HOMES, HOMES + WORKERS):
        state = result.protocols[pid].executor.state
        print(f"worker {pid}: {state.replies}/{OPS} ops done, "
              f"{state.adds_acked} fetch-adds acked, "
              f"{len(state.reads_log)} values observed")
        assert state.replies == OPS

    print("\n--- memory at the homes ---")
    committed = {}
    per_page_versions = defaultdict(list)
    for pid in range(HOMES):
        home = result.protocols[pid].executor.state
        for page, (value, version) in home.pages:
            print(f"page {page} (home {pid}): value={value} "
                  f"version={version}")
        for page, version, value, _writer, _kind in home.write_log:
            committed[(page, version)] = value
            per_page_versions[page].append(version)

    for page, versions in sorted(per_page_versions.items()):
        assert versions == list(range(1, len(versions) + 1)), page
    print("version histories dense: no write lost, none duplicated")

    for pid in range(HOMES, HOMES + WORKERS):
        state = result.protocols[pid].executor.state
        for page, version, value in state.reads_log:
            assert version == 0 and value == 0 or (
                committed.get((page, version)) == value
            )
    print("every observed value corresponds to a committed write")

    failed_home = result.protocols[0]
    print(f"\nrecovery: home 0 restarted "
          f"{failed_home.stats.restarts}x (replayed "
          f"{failed_home.stats.replayed} messages); "
          f"rollbacks across system: {result.total_rollbacks}; "
          f"retransmitted: {result.total('retransmitted')}")
    print("oracle verdict: OK")
    print("\ndsm_shared_memory: all checks passed")


if __name__ == "__main__":
    main()
