#!/usr/bin/env python3
"""Pessimistic vs optimistic vs causal logging, side by side.

The paper positions its protocol inside the message-logging design space
its related work surveys (Alvisi & Marzullo's taxonomy): pessimistic
logging pays a synchronous stable write per receive, optimistic logging
pays orphans and rollbacks when a failure hits, and causal logging pays
piggyback mass and peer-assisted recovery.  This example runs all three
families on the same crashing workload and prints each family's bill.

Run:  python examples/logging_taxonomy.py
"""

from repro import (
    CrashPlan,
    DamaniGargProcess,
    ExperimentSpec,
    ProtocolConfig,
    run_experiment,
)
from repro.analysis import check_recovery, recovery_latencies
from repro.analysis.causality import build_ground_truth
from repro.apps import RandomRoutingApp
from repro.harness.reporting import format_table
from repro.protocols import CausalLoggingProcess, PessimisticReceiverProcess

SEEDS = (0, 1, 2)
FAMILIES = [
    ("pessimistic (receiver log)", PessimisticReceiverProcess),
    ("optimistic (Damani-Garg)", DamaniGargProcess),
    ("causal logging", CausalLoggingProcess),
]


def measure(protocol):
    totals = dict(sync=0, sent=0, piggyback=0, lost=0, orphans=0,
                  rollbacks=0, resume=0.0)
    for seed in SEEDS:
        spec = ExperimentSpec(
            n=4,
            app=RandomRoutingApp(hops=50, seeds=(0, 1), initial_items=3),
            protocol=protocol,
            crashes=CrashPlan().crash(20.0, 1, 2.0),
            seed=seed,
            horizon=100.0,
            config=ProtocolConfig(checkpoint_interval=8.0,
                                  flush_interval=2.5),
        )
        result = run_experiment(spec)
        assert check_recovery(result).ok
        gt = build_ground_truth(result.trace, 4)
        totals["sync"] += result.total("sync_log_writes")
        totals["sent"] += result.total("app_sent")
        totals["piggyback"] += result.total("piggyback_entries")
        totals["lost"] += len(gt.lost)
        totals["orphans"] += len(gt.orphans())
        totals["rollbacks"] += result.total_rollbacks
        (latency,) = recovery_latencies(result)
        totals["resume"] += latency.restart_latency
    return totals


def main() -> None:
    print(f"one crash of P1 at t=20, downtime 2.0, {len(SEEDS)} seeds "
          f"(sums)\n")
    rows = []
    for name, protocol in FAMILIES:
        m = measure(protocol)
        rows.append(
            (
                name,
                m["sync"],
                f"{m['piggyback'] / max(1, m['sent']):.1f}",
                m["lost"],
                m["orphans"],
                m["rollbacks"],
                f"{m['resume'] / len(SEEDS):.2f}",
            )
        )
    print(format_table(
        ["family", "sync writes", "piggyback/msg", "lost", "orphans",
         "rollbacks", "resume"],
        rows,
    ))
    print(
        "\nEach family pays in its own currency:\n"
        "  pessimistic -> a synchronous stable write per received message;\n"
        "  optimistic  -> lost states, orphans and (minimal) rollbacks at\n"
        "                 failure time, with the leanest piggyback (O(n));\n"
        "  causal      -> determinant-laden messages and a recovery that\n"
        "                 must consult the peers (slower resume).\n"
        "\nThe paper's protocol is the optimistic point of this space, with\n"
        "its history mechanism keeping the piggyback at one clock entry\n"
        "per process."
    )


if __name__ == "__main__":
    main()
