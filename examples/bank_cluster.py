#!/usr/bin/env python3
"""A bank cluster surviving crashes with money conserved.

Five branches shuffle money in deterministic transfer chains.  Two branches
crash (one of them twice).  After recovery, the example verifies the
application-level invariant on the surviving computation: every surviving
state transition conserves money, and no surviving state ever observed a
transfer from a lost or orphaned state -- i.e. the recovered history is one
that could have happened in a failure-free run.

It also demonstrates the Remark-1 retransmission extension: without it,
transfers received-but-unlogged at the crash instant vanish with the
failure (money "in flight forever"); with it, the senders retransmit and
the chains continue.

Run:  python examples/bank_cluster.py
"""

from repro import (
    CrashPlan,
    DamaniGargProcess,
    ExperimentSpec,
    ProtocolConfig,
    run_experiment,
)
from repro.analysis import check_recovery
from repro.apps import BankApp

INITIAL_BALANCE = 1000
N = 5


def run(retransmit: bool, seed: int = 3):
    spec = ExperimentSpec(
        n=N,
        app=BankApp(initial_balance=INITIAL_BALANCE, seeds=(0, 2),
                    max_chain=200),
        protocol=DamaniGargProcess,
        crashes=(
            CrashPlan()
            .crash(15.0, 1, downtime=2.0)
            .crash(30.0, 3, downtime=2.0)
            .crash(45.0, 1, downtime=2.0)
        ),
        horizon=120.0,
        seed=seed,
        config=ProtocolConfig(
            checkpoint_interval=8.0,
            flush_interval=2.5,
            retransmit_on_token=retransmit,
        ),
    )
    return run_experiment(spec)


def summarize(result, label: str) -> int:
    verdict = check_recovery(result)
    balances = [p.executor.state.balance for p in result.protocols]
    total = sum(balances)
    stranded = N * INITIAL_BALANCE - total
    print(f"--- {label} ---")
    print(f"final balances          : {balances}")
    print(f"sum of balances         : {total}  (bank opened with "
          f"{N * INITIAL_BALANCE})")
    print(f"stranded money          : {stranded} "
          f"(transfers lost with volatile logs at crashes)")
    print(f"restarts / rollbacks    : {result.total_restarts} / "
          f"{result.total_rollbacks}")
    print(f"retransmitted           : {result.total('retransmitted')}")
    print(f"duplicates suppressed   : {result.total('duplicates_discarded')}")
    print(f"oracle verdict          : "
          f"{'OK' if verdict.ok else verdict.violations}")
    assert verdict.ok
    # Money can be stranded by a failure but never created: the recovered
    # history is one a failure-free run could have produced.
    assert stranded >= 0, "conservation violated: money was created!"
    print()
    return stranded


def main() -> None:
    print(f"{N} branches, {INITIAL_BALANCE} each, "
          f"three crashes (branch 1 twice)\n")
    summarize(run(retransmit=False), "without retransmission (seed 3)")
    summarize(run(retransmit=True),
              "with Remark-1 retransmission (seed 3)")

    # A single seed is anecdote; retransmission changes the execution, so
    # the honest comparison is an aggregate over many runs.
    seeds = range(8)
    stranded_without = sum(
        N * INITIAL_BALANCE
        - sum(p.executor.state.balance for p in run(False, s).protocols)
        for s in seeds
    )
    stranded_with = sum(
        N * INITIAL_BALANCE
        - sum(p.executor.state.balance for p in run(True, s).protocols)
        for s in seeds
    )
    print(f"aggregate stranded money over {len(list(seeds))} seeds:")
    print(f"  without retransmission : {stranded_without}")
    print(f"  with retransmission    : {stranded_with}")
    assert stranded_with < stranded_without
    print("\nbank_cluster: all checks passed")


if __name__ == "__main__":
    main()
