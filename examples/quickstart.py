#!/usr/bin/env python3
"""Quickstart: one failure, asynchronous recovery, verified against ground
truth.

Runs four processes exchanging hop-bounded work items under the Damani-Garg
protocol, crashes one of them mid-run, and shows what the recovery did:
which states were lost with the volatile log, which became orphans, and
that the protocol rolled back exactly the orphans and nothing else.

Run:  python examples/quickstart.py
"""

from repro import (
    CrashPlan,
    DamaniGargProcess,
    ExperimentSpec,
    ProtocolConfig,
    run_experiment,
)
from repro.analysis import check_recovery, check_theorem1, measure_overhead
from repro.apps import RandomRoutingApp
from repro.sim.trace import EventKind


def main() -> None:
    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=50, seeds=(0, 1), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(time=20.0, pid=1, downtime=2.0),
        horizon=100.0,
        seed=7,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    result = run_experiment(spec)

    print("=== run summary ===")
    print(f"messages delivered : {result.total_delivered}")
    print(f"restarts           : {result.total_restarts}")
    print(f"rollbacks          : {result.total_rollbacks}")
    print(f"obsolete discarded : {result.total('app_discarded')}")
    print(f"postponed          : {result.total('app_postponed')}")
    print(f"replayed from log  : {result.total('replayed')}")

    print("\n=== recovery timeline for the failed process (P1) ===")
    for event in result.trace.events(pid=1):
        if event.kind in (
            EventKind.CRASH,
            EventKind.RESTORE,
            EventKind.TOKEN_SEND,
            EventKind.RESTART,
        ):
            print(f"  t={event.time:6.2f}  {event.kind.value:<10} {event.fields}")

    verdict = check_recovery(result)
    gt = verdict.ground_truth
    print("\n=== ground truth ===")
    print(f"states created     : {len(gt.states)}")
    print(f"lost in the crash  : {len(gt.lost)}")
    print(f"orphaned           : {len(verdict.orphans)}")
    print(f"rolled back        : {len(gt.rolled_back)} "
          f"(must equal orphans for minimal rollback)")
    print(f"oracle verdict     : {'OK' if verdict.ok else verdict.violations}")

    theorem = check_theorem1(result)
    print(f"\nTheorem 1 (s->u iff s.clock<u.clock on useful states): "
          f"{'holds' if theorem.ok else 'VIOLATED'} "
          f"over {theorem.pairs_checked} pairs")

    overhead = measure_overhead(result)
    print(f"\npiggyback per message : "
          f"{overhead.piggyback_entries_per_message:.1f} clock entries (n=4)")
    print(f"control messages      : {overhead.control_messages} "
          f"({overhead.control_messages_per_failure:.0f} per failure = n-1)")

    assert verdict.ok and theorem.ok
    print("\nquickstart: all checks passed")


if __name__ == "__main__":
    main()
