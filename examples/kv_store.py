#!/usr/bin/env python3
"""A replicated key-value store that survives replica crashes.

Two replicas, three clients, 25 operations per client.  Both replicas
crash (at different times).  The run shows:

- every client completes its whole session -- crashed replicas come back
  and the Remark-1 retransmission refills what their volatile logs lost;
- the replicas end byte-identical (convergence);
- along every surviving chain, key versions are monotone, and no client
  ever observed a version that the recovery later erased.

For contrast the same run executes WITHOUT retransmission: clients whose
in-flight operations died with a replica's volatile log stall, showing
why the paper's Remark 1 matters for liveness.

Run:  python examples/kv_store.py
"""

from repro import (
    CrashPlan,
    DamaniGargProcess,
    ExperimentSpec,
    ProtocolConfig,
    run_experiment,
)
from repro.analysis import check_recovery
from repro.apps import KVStoreApp

REPLICAS, CLIENTS, OPS = 2, 3, 25


def run(retransmit: bool, seed: int = 1):
    spec = ExperimentSpec(
        n=REPLICAS + CLIENTS,
        app=KVStoreApp(replicas=REPLICAS, keys=6, ops_per_client=OPS),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(30.0, 0, 2.0).crash(60.0, 1, 2.0),
        horizon=250.0,
        seed=seed,
        config=ProtocolConfig(
            checkpoint_interval=10.0,
            flush_interval=3.0,
            retransmit_on_token=retransmit,
        ),
    )
    return run_experiment(spec)


def main() -> None:
    print(f"{REPLICAS} replicas + {CLIENTS} clients, {OPS} ops each; "
          f"both replicas crash\n")

    result = run(retransmit=True)
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations

    print("--- with Remark-1 retransmission ---")
    for pid in range(REPLICAS):
        protocol = result.protocols[pid]
        print(f"replica {pid}: {len(protocol.executor.state.as_dict())} keys, "
              f"restarts={protocol.stats.restarts}, "
              f"replayed={protocol.stats.replayed}")
    stores = [
        result.protocols[pid].executor.state.as_dict()
        for pid in range(REPLICAS)
    ]
    assert stores[0] == stores[1], "replicas diverged!"
    print("replicas converged: identical key -> (value, version) maps")
    for pid in range(REPLICAS, REPLICAS + CLIENTS):
        state = result.protocols[pid].executor.state
        print(f"client {pid}: completed {state.replies}/{OPS} operations")
        assert state.replies == OPS
    print(f"retransmitted: {result.total('retransmitted')}, "
          f"duplicates suppressed: {result.total('duplicates_discarded')}")

    print("\n--- without retransmission (same crashes) ---")
    bare = run(retransmit=False)
    assert check_recovery(bare).ok
    completed = [
        bare.protocols[pid].executor.state.replies
        for pid in range(REPLICAS, REPLICAS + CLIENTS)
    ]
    print(f"client completions: {completed} / {OPS}")
    print("operations whose replies died with a replica's volatile log "
          "are gone; those clients stall (recovery is still correct -- "
          "this is lost *liveness*, the paper's Remark 1)")
    if min(completed) == OPS:
        print("(this seed happened to lose nothing; rerun with other seeds)")

    print("\nkv_store: all checks passed")


if __name__ == "__main__":
    main()
