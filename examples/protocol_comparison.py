#!/usr/bin/env python3
"""Regenerate the paper's Table 1 empirically.

Runs all six Table 1 protocols (plus two context baselines) on identical
workloads with identical failure schedules, measures every column, and
prints the measured table next to the paper's published one.

This takes a minute or two: it is 8 protocols x 9 oracle-checked runs.

Run:  python examples/protocol_comparison.py
"""

from repro.harness import render_paper_comparison, render_table1, run_table1


def main() -> None:
    print("running the Table 1 battery "
          "(8 protocols x 9 oracle-checked runs)...\n")
    rows = run_table1(n=4, seeds=(0, 1, 2, 3, 4, 5))

    print("measured (workload: random routing, n=4, crash of P1 at t=20, "
          "plus a 2-process concurrent-crash battery):\n")
    print(render_table1(rows))

    print("\n\npaper's Table 1 vs measured:\n")
    print(render_paper_comparison(rows))

    assert all(row.safety_ok for row in rows), "a protocol violated safety!"
    print("\nprotocol_comparison: every protocol recovered safely")


if __name__ == "__main__":
    main()
