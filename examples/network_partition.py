#!/usr/bin/env python3
"""Recovering through a network partition.

The paper's asynchrony claim includes partition tolerance: "A process
should not depend upon information stored in other processes to recover.
It should be able to restart despite network partitioning."

Here the network splits into {P0, P1} | {P2, P3}; P1 crashes *inside* the
partition and restarts immediately -- no token delivery, no peer contact.
Its recovery token to P2/P3 is held by the network until the partition
heals, at which point the other side learns of the failure and rolls back
whatever the failure orphaned.  The oracle verifies the final state.

For contrast, the same scenario is run under the sender-based protocol,
whose recovery must *wait* for the partition to heal before it can collect
its logged messages -- measured as recovery blocking time.

Run:  python examples/network_partition.py
"""

from repro import (
    CrashPlan,
    DamaniGargProcess,
    ExperimentSpec,
    PartitionPlan,
    ProtocolConfig,
    run_experiment,
)
from repro.analysis import check_recovery
from repro.apps import RandomRoutingApp
from repro.protocols import SenderBasedProcess
from repro.sim.trace import EventKind

PARTITION_START, CRASH_AT, HEAL_AT = 18.0, 25.0, 50.0


def run(protocol):
    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=60, seeds=(0, 2), initial_items=3),
        protocol=protocol,
        crashes=CrashPlan().crash(CRASH_AT, 1, downtime=2.0),
        partitions=PartitionPlan().partition(
            PARTITION_START, [[0, 1], [2, 3]], heal_time=HEAL_AT
        ),
        horizon=110.0,
        seed=4,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


def main() -> None:
    print(f"partition [[0,1],[2,3]] from t={PARTITION_START} to t={HEAL_AT}; "
          f"P1 crashes at t={CRASH_AT} (inside the partition)\n")

    result = run(DamaniGargProcess)
    restart = result.trace.last(EventKind.RESTART, pid=1)
    assert restart is not None
    print("--- Damani-Garg (asynchronous) ---")
    print(f"P1 restarted at t={restart.time:.2f} "
          f"(crash + downtime = {CRASH_AT + 2.0}; no waiting)")
    deliveries_during_partition = [
        e for e in result.trace.events(EventKind.TOKEN_DELIVER)
        if e.pid in (2, 3)
    ]
    first_far_side = min(e.time for e in deliveries_during_partition)
    print(f"P2/P3 learned of the failure at t={first_far_side:.2f} "
          f"(after the heal at t={HEAL_AT})")
    rollbacks = result.trace.events(EventKind.ROLLBACK)
    print(f"rollbacks after healing: "
          f"{[(e.pid, round(e.time, 2)) for e in rollbacks]}")
    verdict = check_recovery(result)
    print(f"oracle verdict: {'OK' if verdict.ok else verdict.violations}")
    assert verdict.ok
    assert restart.time == CRASH_AT + 2.0
    assert first_far_side >= HEAL_AT

    print("\n--- sender-based logging (needs its peers) ---")
    result_jz = run(SenderBasedProcess)
    failed = result_jz.protocols[1]
    restart_jz = result_jz.trace.last(EventKind.RESTART, pid=1)
    print(f"P1's recovery completed at "
          f"t={restart_jz.time if restart_jz else float('nan'):.2f} "
          f"-- it had to wait for RETRIEVE responses from across the "
          f"partition (heal at t={HEAL_AT})")
    verdict_jz = check_recovery(result_jz)
    assert verdict_jz.ok
    assert restart_jz is not None and restart_jz.time >= HEAL_AT

    print("\nnetwork_partition: all checks passed")


if __name__ == "__main__":
    main()
